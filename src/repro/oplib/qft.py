"""Quantum Fourier Transform descriptors (the paper's running example).

The QFT library emits a ``QFT_TEMPLATE`` operator descriptor — Listing 3 of
the paper — over a phase register.  It never touches gates: the realization
(which controlled-phase ladder, whether to reorder wires) is decided by the
backend from the context, which is exactly the "defer circuit generation
until the backend parameters are known" point of Section 2.
"""

from __future__ import annotations

from typing import Optional

from ..core.qdt import QuantumDataType
from ..core.qod import QuantumOperatorDescriptor
from ..core.result_schema import ResultSchema
from .library import build_operator

__all__ = ["qft_operator", "inverse_qft_operator"]


def qft_operator(
    qdt: QuantumDataType,
    *,
    name: str = "QFT",
    approx_degree: int = 0,
    do_swaps: bool = True,
    inverse: bool = False,
    attach_result_schema: bool = True,
) -> QuantumOperatorDescriptor:
    """A QFT operator descriptor acting in place on *qdt*.

    Parameters
    ----------
    approx_degree:
        Number of smallest-angle controlled-phase layers to drop (0 = exact).
    do_swaps:
        Whether the final wire-reversal swaps are requested, so that the
        output ordering matches the conventional FFT output ordering.
    inverse:
        Select the inverse transform.
    attach_result_schema:
        Attach the default Z-basis result schema for *qdt* so a downstream
        measurement knows how to decode (Listing 3 carries one).
    """
    if approx_degree < 0 or approx_degree >= qdt.width:
        raise ValueError("approx_degree must lie in [0, width)")
    schema: Optional[ResultSchema] = (
        ResultSchema.for_register(qdt) if attach_result_schema else None
    )
    return build_operator(
        name,
        "QFT_TEMPLATE",
        qdt,
        params={
            "approx_degree": int(approx_degree),
            "do_swaps": bool(do_swaps),
            "inverse": bool(inverse),
        },
        result_schema=schema,
    )


def inverse_qft_operator(
    qdt: QuantumDataType,
    *,
    name: str = "IQFT",
    approx_degree: int = 0,
    do_swaps: bool = True,
) -> QuantumOperatorDescriptor:
    """The inverse QFT (same template with ``inverse=True``)."""
    return qft_operator(
        qdt,
        name=name,
        approx_degree=approx_degree,
        do_swaps=do_swaps,
        inverse=True,
    )
