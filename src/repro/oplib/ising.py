"""Ising / QUBO problem descriptors for the annealing path.

The annealer backend of the proof of concept consumes a single
``ISING_PROBLEM`` operator descriptor declaring the energy
``E(s) = sum_i h_i s_i + sum_{i<j} J_ij s_i s_j`` over an ``ISING_SPIN``
register (Fig. 3 of the paper).  The constructors here accept either an
explicit ``(h, J)`` pair, a weighted edge list, or a NetworkX graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from ..core.errors import DescriptorError
from ..core.qdt import QuantumDataType
from ..core.qod import QuantumOperatorDescriptor
from ..core.result_schema import ResultSchema
from .library import build_operator

__all__ = [
    "ising_problem_operator",
    "ising_problem_from_graph",
    "qubo_problem_operator",
    "edges_to_dense_j",
    "ising_cost_observable",
]

Edge = Tuple[int, int]


def edges_to_dense_j(
    width: int, edges: Sequence[Edge], weights: Optional[Sequence[float]] = None
) -> List[List[float]]:
    """Dense symmetric ``J`` matrix from an edge list (upper triangle filled)."""
    J = np.zeros((width, width), dtype=float)
    weights = [1.0] * len(edges) if weights is None else list(weights)
    if len(weights) != len(edges):
        raise DescriptorError("weights must match edges one-to-one")
    for (i, j), w in zip(edges, weights):
        i, j = int(i), int(j)
        if i == j or not (0 <= i < width and 0 <= j < width):
            raise DescriptorError(f"edge ({i}, {j}) invalid for width {width}")
        a, b = (i, j) if i < j else (j, i)
        J[a, b] += float(w)
    return J.tolist()


def ising_cost_observable(
    width: int,
    *,
    edges: Sequence[Edge],
    weights: Optional[Sequence[float]] = None,
    h: Optional[Sequence[float]] = None,
) -> Dict[str, float]:
    """The Ising energy as a Pauli-string observable mapping.

    Returns ``{pauli_string: coefficient}`` for
    ``H = sum_i h_i Z_i + sum_{(i,j)} w_ij Z_i Z_j`` with character ``i`` of
    each string acting on qubit ``i`` — exactly the observable format
    :meth:`Statevector.expectation
    <repro.simulators.gate.statevector.Statevector.expectation>` and
    :meth:`DensityMatrixSimulator.expectation
    <repro.simulators.gate.density.DensityMatrixSimulator.expectation>`
    accept.  This is the shot-free counterpart of the ``ISING_COST_PHASE``
    layer: the variational fast path evaluates a QAOA energy as an exact
    expectation of this observable instead of estimating it from sampled
    counts.  Duplicate edges accumulate; an empty problem yields the
    all-identity string with coefficient zero.
    """
    edge_list = [(int(i), int(j)) for i, j in edges]
    weight_list = [1.0] * len(edge_list) if weights is None else [float(w) for w in weights]
    if len(weight_list) != len(edge_list):
        raise DescriptorError("weights must match edges one-to-one")
    h_list = [0.0] * width if h is None else [float(x) for x in h]
    if len(h_list) != width:
        raise DescriptorError(f"|h| = {len(h_list)} does not match width {width}")
    terms: Dict[str, float] = {}
    for (i, j), w in zip(edge_list, weight_list):
        if i == j or not (0 <= i < width and 0 <= j < width):
            raise DescriptorError(f"edge ({i}, {j}) invalid for width {width}")
        key = "".join("Z" if q in (i, j) else "I" for q in range(width))
        terms[key] = terms.get(key, 0.0) + w
    for i, bias in enumerate(h_list):
        if bias != 0.0:
            key = "".join("Z" if q == i else "I" for q in range(width))
            terms[key] = terms.get(key, 0.0) + bias
    if not terms:
        terms["I" * width] = 0.0
    return terms


def ising_problem_operator(
    qdt: QuantumDataType,
    *,
    h: Optional[Sequence[float]] = None,
    J: Optional[Sequence[Sequence[float]]] = None,
    edges: Optional[Sequence[Edge]] = None,
    weights: Optional[Sequence[float]] = None,
    constant: float = 0.0,
    name: str = "ising_problem",
    attach_result_schema: bool = True,
) -> QuantumOperatorDescriptor:
    """An ``ISING_PROBLEM`` descriptor over the spin register *qdt*.

    Either a dense ``J`` matrix or an ``edges`` (+ optional ``weights``) list
    must be provided; both are carried in ``params`` so gate and annealing
    backends can pick whichever form suits them.
    """
    width = qdt.width
    h_list = [0.0] * width if h is None else [float(x) for x in h]
    if len(h_list) != width:
        raise DescriptorError(f"|h| = {len(h_list)} does not match register width {width}")

    if J is None and edges is None:
        raise DescriptorError("ising_problem_operator needs either J or edges")
    if edges is None:
        J_arr = np.asarray(J, dtype=float)
        if J_arr.shape != (width, width):
            raise DescriptorError(f"J must be a {width}x{width} matrix")
        if np.allclose(J_arr, J_arr.T):
            # A symmetric matrix (the paper's Fig. 3 form) lists each coupling
            # twice; the upper triangle alone carries the J_{i<j} coefficients.
            sym = np.triu(J_arr, 1)
        else:
            sym = np.triu(J_arr, 1) + np.tril(J_arr, -1).T
        edge_list = [
            (int(i), int(j)) for i in range(width) for j in range(i + 1, width) if sym[i, j] != 0
        ]
        weight_list = [float(sym[i, j]) for (i, j) in edge_list]
        J_dense = sym.tolist()
    else:
        edge_list = [(int(i), int(j)) for i, j in edges]
        weight_list = [1.0] * len(edge_list) if weights is None else [float(w) for w in weights]
        J_dense = edges_to_dense_j(width, edge_list, weight_list)

    schema = ResultSchema.for_register(qdt) if attach_result_schema else None
    return build_operator(
        name,
        "ISING_PROBLEM",
        qdt,
        params={
            "h": h_list,
            "J": J_dense,
            "edges": [[i, j] for i, j in edge_list],
            "weights": weight_list,
            "constant": float(constant),
        },
        result_schema=schema,
    )


def ising_problem_from_graph(
    qdt: QuantumDataType,
    graph: nx.Graph,
    *,
    weight_attribute: str = "weight",
    default_weight: float = 1.0,
    h: Optional[Sequence[float]] = None,
    name: str = "ising_problem",
) -> QuantumOperatorDescriptor:
    """Build an Ising problem descriptor from a NetworkX graph.

    Graph nodes must be integers in ``[0, qdt.width)``; edge weights become
    the couplings ``J_ij``.
    """
    edges: List[Edge] = []
    weights: List[float] = []
    for u, v, data in graph.edges(data=True):
        edges.append((int(u), int(v)))
        weights.append(float(data.get(weight_attribute, default_weight)))
    return ising_problem_operator(
        qdt, h=h, edges=edges, weights=weights, name=name
    )


def qubo_problem_operator(
    qdt: QuantumDataType,
    Q: Mapping[Tuple[int, int], float] | Sequence[Sequence[float]],
    *,
    constant: float = 0.0,
    name: str = "qubo_problem",
) -> QuantumOperatorDescriptor:
    """A ``QUBO_PROBLEM`` descriptor (binary variables, dictionary or matrix Q)."""
    width = qdt.width
    if isinstance(Q, Mapping):
        dense = np.zeros((width, width), dtype=float)
        for (i, j), value in Q.items():
            i, j = int(i), int(j)
            if not (0 <= i < width and 0 <= j < width):
                raise DescriptorError(f"QUBO index ({i}, {j}) out of range for width {width}")
            dense[i, j] += float(value)
    else:
        dense = np.asarray(Q, dtype=float)
        if dense.shape != (width, width):
            raise DescriptorError(f"Q must be a {width}x{width} matrix")
    return build_operator(
        name,
        "QUBO_PROBLEM",
        qdt,
        params={"Q": dense.tolist(), "constant": float(constant)},
        result_schema=ResultSchema.for_register(qdt),
    )
