"""Quantum algorithmic libraries: pure constructors of operator descriptors."""

from .arithmetic import (
    adder_operator,
    comparator_operator,
    modular_adder_operator,
    modular_multiplier_operator,
    register_adder_operator,
)
from .boolean import controlled_operator, cswap_operator, multiplexer_operator
from .compose import bind_parameters, compose, invert, sandwich, unbound_parameters
from .costmodel import attach_cost_hints, estimate_cost, register_cost_estimator
from .ising import (
    edges_to_dense_j,
    ising_problem_from_graph,
    ising_problem_operator,
    qubo_problem_operator,
)
from .library import build_operator, measurement
from .phase import controlled_phase_operator, qpe_operator, swap_test_operator
from .qaoa import (
    bind_qaoa_parameters,
    cost_layer,
    mixer_layer,
    qaoa_parameter_names,
    qaoa_sequence,
)
from .qec import repetition_memory_operator, repetition_register
from .qft import inverse_qft_operator, qft_operator
from .stateprep import prep_amplitude, prep_angle, prep_basis_state, prep_uniform

__all__ = [
    "build_operator",
    "measurement",
    "qft_operator",
    "inverse_qft_operator",
    "qaoa_sequence",
    "cost_layer",
    "mixer_layer",
    "bind_qaoa_parameters",
    "qaoa_parameter_names",
    "ising_problem_operator",
    "ising_problem_from_graph",
    "qubo_problem_operator",
    "edges_to_dense_j",
    "prep_uniform",
    "prep_basis_state",
    "prep_amplitude",
    "prep_angle",
    "adder_operator",
    "register_adder_operator",
    "modular_adder_operator",
    "modular_multiplier_operator",
    "comparator_operator",
    "controlled_operator",
    "cswap_operator",
    "multiplexer_operator",
    "controlled_phase_operator",
    "swap_test_operator",
    "qpe_operator",
    "repetition_register",
    "repetition_memory_operator",
    "compose",
    "invert",
    "sandwich",
    "bind_parameters",
    "unbound_parameters",
    "estimate_cost",
    "attach_cost_hints",
    "register_cost_estimator",
]
