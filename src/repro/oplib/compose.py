"""Composition, inversion and late-binding helpers for operator sequences.

"Composition is just a list of descriptors with utilities to check quantum
data type compatibility and enforce no hidden measurement/reset"
(Section 4.4).  The utilities here operate on
:class:`~repro.core.qod.OperatorSequence` objects and never inspect backends.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from ..core.errors import CompatibilityError, DescriptorError
from ..core.qdt import QuantumDataType
from ..core.qod import OperatorSequence, QuantumOperatorDescriptor
from ..core.validation import check_sequence

__all__ = [
    "compose",
    "invert",
    "bind_parameters",
    "unbound_parameters",
    "sandwich",
]


def compose(
    *parts: OperatorSequence | QuantumOperatorDescriptor | Iterable[QuantumOperatorDescriptor],
    qdts: Optional[Mapping[str, QuantumDataType]] = None,
) -> OperatorSequence:
    """Concatenate sequences/operators into one sequence, optionally validating.

    Measurements may only appear in the final part — composing past a
    measurement is the "hidden measurement" mistake the middle layer forbids.
    """
    sequence = OperatorSequence()
    for index, part in enumerate(parts):
        if isinstance(part, QuantumOperatorDescriptor):
            ops = [part]
        else:
            ops = list(part)
        if index > 0 and any(op.is_measurement for op in sequence):
            raise CompatibilityError(
                "cannot compose more operators after a measuring part"
            )
        sequence.extend(ops)
    if qdts is not None:
        check_sequence(sequence, qdts)
    return sequence


def invert(sequence: OperatorSequence) -> OperatorSequence:
    """The inverse of a unitary sequence (reversed, each operator inverted)."""
    return sequence.inverse()


def sandwich(
    outer: OperatorSequence, inner: OperatorSequence
) -> OperatorSequence:
    """``outer . inner . outer^{-1}`` — the conjugation pattern (e.g. QFT adders)."""
    return compose(outer, inner, invert(outer))


def unbound_parameters(sequence: OperatorSequence) -> Dict[str, Sequence[str]]:
    """Map operator name -> required parameters that are still missing."""
    missing: Dict[str, Sequence[str]] = {}
    for op in sequence:
        absent = op.missing_params()
        if absent:
            missing[op.name] = absent
    return missing


def bind_parameters(
    sequence: OperatorSequence,
    bindings: Mapping[str, Mapping[str, object]],
    *,
    strict: bool = True,
) -> OperatorSequence:
    """Late-bind parameters by operator name.

    ``bindings`` maps operator names to ``{param: value}`` dictionaries.  With
    ``strict=True`` every binding must refer to an operator present in the
    sequence, and the result must have no missing required parameters left.
    """
    names = {op.name for op in sequence}
    unknown = set(bindings) - names
    if strict and unknown:
        raise DescriptorError(f"bindings refer to unknown operators: {sorted(unknown)}")
    bound = OperatorSequence(
        op.with_params(**bindings[op.name]) if op.name in bindings else op
        for op in sequence
    )
    if strict:
        still_missing = unbound_parameters(bound)
        if still_missing:
            raise DescriptorError(
                f"parameters still unbound after binding: {still_missing}"
            )
    return bound
