#!/usr/bin/env python
"""Single static-analysis entry point: invariant lint + IR verifier corpus.

Runs both layers of the static-analysis subsystem and exits nonzero if either
finds a problem:

1. **Invariant lint** (``tools/lint_invariants.py``) over ``src/repro`` (or
   the paths given on the command line) — seeded-RNG discipline, bounded
   caches, dtype plumbing, wall-clock bans, README knob coverage.
2. **IR verifier corpus** (``repro.simulators.gate.analysis``) — a
   representative set of circuits (GHZ, QAOA ring, mid-circuit
   measure/reset, controlled-rotation variety) is compiled across noise
   models and trajectory dtypes; every template, bound program and
   transpiler stage output is verified against the ``IR``/``TR`` rule
   catalog, and a ``verify_compiled=True`` simulator run checks the result
   metadata contract end to end.

Usage::

    python tools/analyze.py                  # full repo analysis (CI fast lane)
    python tools/analyze.py --json out.json  # also write the diagnostics report
    python tools/analyze.py --demo-corrupt   # verify a deliberately corrupted
                                             # program (exits nonzero; used by
                                             # tests to prove failures propagate)
    python tools/analyze.py path/to/file.py  # lint specific paths only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import lint_invariants  # noqa: E402  (needs the tools/ path bootstrap above)


def _corpus_circuits():
    """The representative circuit set the verifier corpus compiles."""
    from repro.simulators.gate import Circuit

    ghz = Circuit(4, 4, name="ghz")
    ghz.h(0)
    for qubit in range(3):
        ghz.cx(qubit, qubit + 1)
    ghz.measure_all()

    qaoa = Circuit(5, 5, name="qaoa_ring")
    for qubit in range(5):
        qaoa.h(qubit)
    for layer, (gamma, beta) in enumerate([(0.73, 1.19), (2.31, 0.41)]):
        for a in range(5):
            qaoa.rzz(gamma + 0.1 * layer, a, (a + 1) % 5)
        for a in range(5):
            qaoa.rx(beta, a)
    qaoa.measure_all()

    dynamic = Circuit(3, 3, name="dynamic")
    dynamic.h(0)
    dynamic.cx(0, 1)
    dynamic.measure(0, 0)
    dynamic.reset(0)
    dynamic.ry(0.8, 0)
    dynamic.crx(1.3, 1, 2)
    dynamic.measure_all()

    controlled = Circuit(3, 3, name="controlled")
    controlled.h(0)
    controlled.cp(0.7, 0, 1)
    controlled.crx(2.2, 1, 2)
    controlled.swap(0, 2)
    controlled.rzz(1.1, 0, 1)

    return [ghz, qaoa, dynamic, controlled]


def run_verifier_corpus() -> List[Tuple[str, "object"]]:
    """Compile the corpus and verify every artifact; returns (name, report) pairs."""
    import numpy as np

    from repro.simulators.gate import StatevectorSimulator, analysis
    from repro.simulators.gate.fusion import compile_parametric_template
    from repro.simulators.gate.noise import NoiseModel
    from repro.simulators.gate.transpiler import passes
    from repro.simulators.gate.transpiler.cache import transpile_cached

    reports: List[Tuple[str, object]] = []
    noise_settings = (
        ("noiseless", None),
        ("noisy", NoiseModel(oneq_error=0.01, twoq_error=0.05, readout_error=0.02)),
    )
    dtype_settings = (("c128", None), ("c64", np.dtype(np.complex64)))
    for circuit in _corpus_circuits():
        template = compile_parametric_template(circuit)
        reports.append(
            (f"{circuit.name}:template", analysis.verify_template(template, circuit))
        )
        for noise_name, noise in noise_settings:
            for dtype_name, dtype in dtype_settings:
                program = template.bind(circuit, noise, dtype=dtype)
                reports.append(
                    (
                        f"{circuit.name}:program:{noise_name}:{dtype_name}",
                        analysis.verify_program(program),
                    )
                )

    # Transpiler stages: a collecting hook records every stage report while
    # the real pipeline (cached replay path included) runs.
    staged: List[Tuple[str, object]] = []

    def stage_collector(stage, circuit, **context):
        staged.append(
            (f"transpile:{stage}", analysis.verify_stage(stage, circuit, **context))
        )

    ring = [(q, (q + 1) % 5) for q in range(5)]
    passes.set_stage_hook(stage_collector)
    try:
        for circuit in _corpus_circuits():
            if circuit.num_qubits > 5:
                continue
            coupling = [edge for edge in ring if max(edge) < circuit.num_qubits] or None
            for _ in range(2):  # second pass exercises the cached replay
                transpile_cached(
                    circuit,
                    basis_gates=["sx", "rz", "cx"],
                    coupling_map=coupling,
                    optimization_level=2,
                )
    finally:
        passes.set_stage_hook(None)
    reports.extend(staged)

    # Stabilizer compile path: the Clifford member of the corpus (GHZ)
    # lowered onto the tableau engine and checked against IR009/IR010.
    from repro.simulators.gate.fusion import compile_stabilizer_program

    ghz = _corpus_circuits()[0]
    for noise_name, noise in noise_settings:
        stabilizer_program = compile_stabilizer_program(ghz, noise)
        reports.append(
            (
                f"{ghz.name}:stabilizer:{noise_name}",
                analysis.verify_stabilizer_program(stabilizer_program),
            )
        )

    # End-to-end knob path: a verify_compiled run checks program, template
    # and result metadata inside the simulator itself.
    for engine in ("batched", "density", "stabilizer"):
        simulator = StatevectorSimulator(
            noise_model=NoiseModel(oneq_error=0.01, twoq_error=0.02, readout_error=0.01),
            trajectory_engine=engine,
            verify_compiled=True,
        )
        result = simulator.run(_corpus_circuits()[0], shots=128, seed=11)
        reports.append(
            (f"run:{engine}:metadata", analysis.verify_result(result))
        )
    return reports


def demo_corrupt_program() -> List[Tuple[str, object]]:
    """Verify a deliberately corrupted program (the seeded-failure demo)."""
    import numpy as np

    from repro.simulators.gate import Circuit, analysis
    from repro.simulators.gate.fusion import GateStep, compile_trajectory_program
    from repro.simulators.gate.kernels import build_plan

    circuit = Circuit(2, 2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure_all()
    program = compile_trajectory_program(circuit)
    step = next(s for s in program.steps if isinstance(s, GateStep))
    bad = np.asarray(step.matrix, dtype=np.complex128).copy()
    bad[0, 0] = 3.7  # deliberately non-unitary
    index = program.steps.index(step)
    program.steps[index] = GateStep(bad, step.qubits, build_plan(bad), step.noise)
    return [("demo-corrupt:program", analysis.verify_program(program))]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run both layers, print a summary, return an exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories for the invariant lint (default: src/repro)",
    )
    parser.add_argument("--json", type=Path, help="write the diagnostics report here")
    parser.add_argument(
        "--demo-corrupt",
        action="store_true",
        help="verify a deliberately corrupted program instead of the corpus "
        "(always exits nonzero; proves failures propagate)",
    )
    parser.add_argument(
        "--no-readme-check",
        action="store_true",
        help="skip the KNOB001 README cross-check",
    )
    args = parser.parse_args(argv)

    violations, suppressed = lint_invariants.lint(
        args.paths or None, readme_check=not args.no_readme_check
    )
    for path, lineno, rule, message in violations:
        print(f"{lint_invariants._relative(path)}:{lineno}: {rule} {message}")

    reports = demo_corrupt_program() if args.demo_corrupt else run_verifier_corpus()
    failed = [(name, report) for name, report in reports if not report.ok]
    for name, report in failed:
        for diagnostic in report.diagnostics:
            print(f"{name}: {diagnostic}")

    ok = not violations and not failed
    if args.json:
        payload = {
            "ok": ok,
            "lint": {
                "violations": [
                    {
                        "path": lint_invariants._relative(path),
                        "line": lineno,
                        "rule": rule,
                        "message": message,
                    }
                    for path, lineno, rule, message in violations
                ],
                "suppressed": [
                    {
                        "path": lint_invariants._relative(path),
                        "line": lineno,
                        "rule": rule,
                    }
                    for path, lineno, rule in suppressed
                ],
            },
            "verifier": {
                "subjects": len(reports),
                "failed": len(failed),
                "reports": [
                    dict(report.to_dict(), subject=name) for name, report in reports
                ],
            },
        }
        args.json.write_text(json.dumps(payload, indent=2), encoding="utf-8")

    print(
        f"analyze: lint {len(violations)} violation(s) "
        f"({len(suppressed)} suppressed by pragma), verifier "
        f"{len(reports)} subject(s), {len(failed)} failed"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
