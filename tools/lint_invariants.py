#!/usr/bin/env python
"""A dependency-free AST linter for the repo's standing invariants.

The codebase upholds several invariants only by convention — seeded-RNG
discipline, bounded caches, centralised dtype policy, no wall-clock reads in
kernels.  This linter makes them machine-checked (the ``tools/analyze.py``
driver runs it next to the IR verifier).  Rules:

* ``RNG001`` — no global/module-level RNG calls (``np.random.<fn>`` outside
  the seeded-``Generator`` constructors, or stdlib ``random.<fn>``); every
  random draw must flow from a seeded ``np.random.default_rng``/
  ``SeedSequence`` stream.
* ``RNG002`` — ``default_rng()`` must be seeded (no zero-argument calls).
* ``CACHE001`` — in ``simulators/gate``, no unbounded ``functools.lru_cache``
  / ``functools.cache`` (a ``maxsize`` literal is required; ``None`` is
  unbounded).
* ``CACHE002`` — in ``simulators/gate``, no module-level dict-literal caches
  (names containing ``CACHE``): process-global caches must use
  :class:`~repro.simulators.gate.lru.BoundedLRU`.
* ``DTYPE001`` — no hardcoded ``complex128`` / ``dtype=complex`` literals
  outside the dtype plumbing modules (``simulators/gate/dtypes.py`` and the
  numeric core listed in ``DTYPE_PLUMBING``).
* ``TIME001`` — no wall-clock reads (``time.time``/``perf_counter``/
  ``monotonic``, ``datetime.now``/``utcnow``) in library code; timing belongs
  to benchmarks and the runtime submission layer.
* ``KNOB001`` — every exec-policy knob read by ``backends/gate_backend.py``
  (``exec_policy.options.get("<knob>")``) must have a backticked row in the
  README's knob table.

A violating line can carry an explicit ``# lint: allow(RULE)`` pragma (comma
separated for several rules); the violation is then suppressed **and
counted**, so deliberate exceptions stay visible in the report.

Run standalone (``python tools/lint_invariants.py [paths...]``) for a report
and a nonzero exit code on violations, or through ``tools/analyze.py`` /
``tests/test_lint_invariants.py``.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
README = REPO_ROOT / "README.md"
GATE_BACKEND = SRC_ROOT / "backends" / "gate_backend.py"

#: Rule catalog: id -> one-line description (rendered in ``docs/static_analysis.md``).
LINT_RULES = {
    "RNG001": "no global RNG calls; draws flow from seeded default_rng streams",
    "RNG002": "default_rng() must be seeded (no zero-argument calls)",
    "CACHE001": "no unbounded lru_cache/cache in simulators/gate",
    "CACHE002": "no module-level dict caches in simulators/gate (use BoundedLRU)",
    "DTYPE001": "no hardcoded complex128/dtype=complex outside dtype plumbing",
    "TIME001": "no wall-clock reads in library code",
    "KNOB001": "every gate_backend exec-policy knob has a README table row",
}

#: ``np.random`` attributes that are seeded-RNG plumbing, not global draws.
SEEDED_RNG_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "Philox",
    "MT19937",
}

#: Modules allowed to spell complex dtypes directly (the numeric core).
DTYPE_PLUMBING = (
    "src/repro/simulators/gate/dtypes.py",
    "src/repro/simulators/gate/gates.py",
    "src/repro/simulators/gate/kernels.py",
    "src/repro/simulators/gate/fusion.py",
    "src/repro/simulators/gate/density.py",
    "src/repro/simulators/gate/statevector.py",
    "src/repro/simulators/gate/batched.py",
    "src/repro/simulators/gate/unitary.py",
    "src/repro/simulators/gate/transpiler/decompose.py",
    "src/repro/simulators/gate/analysis/verifier.py",
)

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

_PRAGMA = re.compile(r"#\s*lint:\s*allow\(\s*([A-Z0-9_,\s]+?)\s*\)")

Violation = Tuple[Path, int, str, str]
Suppressed = Tuple[Path, int, str]


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _pragmas(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rules allowed on that line by ``# lint: allow(...)``."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match:
            rules = {rule.strip() for rule in match.group(1).split(",") if rule.strip()}
            allowed[lineno] = rules
    return allowed


def _relative(path: Path) -> str:
    """Repo-relative POSIX path when possible (tmp files stay absolute)."""
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def _in_gate_scope(path: Path) -> bool:
    return "simulators/gate" in _relative(path)


def _imports_stdlib_random(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "random" for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            return True
    return False


def _lru_cache_violation(call: ast.Call) -> Optional[str]:
    """The CACHE001 message for an ``lru_cache(...)`` call, or ``None``."""
    for keyword in call.keywords:
        if keyword.arg == "maxsize":
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(value.value, int):
                return None
            return "lru_cache maxsize must be a positive int literal (None is unbounded)"
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, int):
            return None
        return "lru_cache maxsize must be a positive int literal (None is unbounded)"
    return "lru_cache without maxsize is unbounded; pass an explicit bound"


def _check_calls(
    tree: ast.Module, path: Path, stdlib_random: bool, gate_scope: bool
) -> Iterator[Violation]:
    """Yield the per-call rules: RNG001/RNG002, CACHE001, TIME001."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted_name(node.func)
        if name is None:
            continue
        tail = name.rsplit(".", 1)[-1]
        if name.startswith(("np.random.", "numpy.random.")):
            if tail not in SEEDED_RNG_CONSTRUCTORS:
                yield (
                    path,
                    node.lineno,
                    "RNG001",
                    f"global RNG call {name}(); draw from a seeded "
                    f"np.random.default_rng(...) stream instead",
                )
        elif stdlib_random and (name.startswith("random.") or name == "random.random"):
            yield (
                path,
                node.lineno,
                "RNG001",
                f"stdlib RNG call {name}(); use a seeded NumPy Generator",
            )
        if tail == "default_rng" and not node.args and not node.keywords:
            yield (
                path,
                node.lineno,
                "RNG002",
                "unseeded default_rng(); thread an explicit seed through",
            )
        if gate_scope and tail == "lru_cache" and name in ("lru_cache", "functools.lru_cache"):
            message = _lru_cache_violation(node)
            if message is not None:
                yield (path, node.lineno, "CACHE001", message)
        if name in _WALL_CLOCK_CALLS:
            yield (
                path,
                node.lineno,
                "TIME001",
                f"wall-clock read {name}(); timing belongs to benchmarks "
                f"and the runtime submission layer",
            )


def _check_decorators(
    tree: ast.Module, path: Path, gate_scope: bool
) -> Iterator[Violation]:
    """Yield CACHE001 for bare ``@lru_cache`` / ``@cache`` decorators."""
    if not gate_scope:
        return
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                continue  # handled by _check_calls
            name = _dotted_name(decorator)
            if name in ("lru_cache", "functools.lru_cache"):
                yield (
                    path,
                    decorator.lineno,
                    "CACHE001",
                    "bare @lru_cache is unbounded; pass an explicit maxsize",
                )
            elif name in ("cache", "functools.cache"):
                yield (
                    path,
                    decorator.lineno,
                    "CACHE001",
                    "@functools.cache is unbounded; use lru_cache with a "
                    "maxsize or BoundedLRU",
                )


def _check_module_caches(
    tree: ast.Module, path: Path, gate_scope: bool
) -> Iterator[Violation]:
    """Yield CACHE002 for module-level dict-literal caches."""
    if not gate_scope:
        return
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not isinstance(value, ast.Dict):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and "CACHE" in target.id.upper():
                yield (
                    path,
                    node.lineno,
                    "CACHE002",
                    f"module-level dict cache {target.id!r} is unbounded; "
                    f"use BoundedLRU",
                )


def _check_dtypes(tree: ast.Module, path: Path) -> Iterator[Violation]:
    """Yield DTYPE001 for hardcoded complex-dtype literals."""
    if _relative(path) in DTYPE_PLUMBING:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == "complex128":
            yield (
                path,
                node.lineno,
                "DTYPE001",
                "hardcoded np.complex128; import the canonical dtype from "
                "simulators.gate.dtypes",
            )
        elif isinstance(node, ast.Name) and node.id == "complex128":
            yield (
                path,
                node.lineno,
                "DTYPE001",
                "hardcoded complex128; import the canonical dtype from "
                "simulators.gate.dtypes",
            )
        elif isinstance(node, ast.keyword) and node.arg == "dtype":
            if isinstance(node.value, ast.Name) and node.value.id == "complex":
                yield (
                    path,
                    node.lineno,
                    "DTYPE001",
                    "dtype=complex hardcodes double precision; use the "
                    "canonical dtype from simulators.gate.dtypes",
                )


def check_readme_knobs(
    backend_path: Path = GATE_BACKEND, readme_path: Path = README
) -> List[Violation]:
    """KNOB001: every ``options.get("<knob>")`` in the backend has a README row."""
    violations: List[Violation] = []
    if not backend_path.exists() or not readme_path.exists():
        return violations
    tree = ast.parse(backend_path.read_text(encoding="utf-8"), filename=str(backend_path))
    readme = readme_path.read_text(encoding="utf-8")
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr != "get":
            continue
        owner = node.func.value
        if not (isinstance(owner, ast.Attribute) and owner.attr == "options"):
            continue
        if not (node.args and isinstance(node.args[0], ast.Constant)):
            continue
        knob = node.args[0].value
        if isinstance(knob, str) and f"`{knob}`" not in readme:
            violations.append(
                (
                    backend_path,
                    node.lineno,
                    "KNOB001",
                    f"exec-policy knob {knob!r} has no backticked row in "
                    f"{readme_path.name}'s knob table",
                )
            )
    return violations


def lint_file(path: Path) -> Tuple[List[Violation], List[Suppressed]]:
    """Lint one Python file; returns (violations, suppressed-by-pragma)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    allowed = _pragmas(source)
    gate_scope = _in_gate_scope(path)
    stdlib_random = _imports_stdlib_random(tree)
    candidates: List[Violation] = []
    candidates.extend(_check_calls(tree, path, stdlib_random, gate_scope))
    candidates.extend(_check_decorators(tree, path, gate_scope))
    candidates.extend(_check_module_caches(tree, path, gate_scope))
    candidates.extend(_check_dtypes(tree, path))
    violations: List[Violation] = []
    suppressed: List[Suppressed] = []
    for violation in candidates:
        _, lineno, rule, _ = violation
        if rule in allowed.get(lineno, set()):
            suppressed.append((violation[0], lineno, rule))
        else:
            violations.append(violation)
    return violations, suppressed


def lint(
    paths: Optional[Sequence[Path]] = None, *, readme_check: bool = True
) -> Tuple[List[Violation], List[Suppressed]]:
    """Lint *paths* (files or directories; default ``src/repro``)."""
    roots = [Path(p) for p in paths] if paths else [SRC_ROOT]
    files: List[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    violations: List[Violation] = []
    suppressed: List[Suppressed] = []
    for path in files:
        file_violations, file_suppressed = lint_file(path)
        violations.extend(file_violations)
        suppressed.extend(file_suppressed)
    if readme_check:
        violations.extend(check_readme_knobs())
    return violations, suppressed


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: print violations, return a shell exit code."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--no-readme-check",
        action="store_true",
        help="skip the KNOB001 README cross-check",
    )
    args = parser.parse_args(argv)
    violations, suppressed = lint(
        args.paths or None, readme_check=not args.no_readme_check
    )
    for path, lineno, rule, message in violations:
        print(f"{_relative(path)}:{lineno}: {rule} {message}")
    if suppressed:
        print(f"{len(suppressed)} violation(s) suppressed by pragma:")
        for path, lineno, rule in suppressed:
            print(f"  {_relative(path)}:{lineno}: {rule} (allowed)")
    if violations:
        print(f"{len(violations)} invariant violation(s)")
        return 1
    print("invariant lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
