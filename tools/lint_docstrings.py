#!/usr/bin/env python
"""A dependency-free docstring linter (pydocstyle-equivalent subset).

The container this project builds in has no ``pydocstyle``, so the verify
path uses this AST-based checker instead.  Scope: the public API surface of
``src/repro/simulators/gate`` and ``src/repro/backends`` (including
subpackages).  Enforced rules, numbered after their pydocstyle analogues:

* ``DOC100`` — every module has a docstring;
* ``DOC101`` — every public class has a docstring;
* ``DOC102`` — every public function and method has a docstring
  (names starting with ``_`` are exempt, as are nested functions);
* ``DOC200`` — the first docstring line is a non-empty summary;
* ``DOC201`` — the summary line ends with terminating punctuation
  (``.``, ``:``, ``?`` or ``!``), so it reads as a sentence.

Run standalone (``python tools/lint_docstrings.py``) for a report and a
nonzero exit code on violations, or through ``tests/test_docstrings.py``
which wires it into the pytest verify path.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SCOPES = (
    REPO_ROOT / "src" / "repro" / "simulators" / "gate",
    REPO_ROOT / "src" / "repro" / "backends",
)
SUMMARY_TERMINATORS = (".", ":", "?", "!")

Violation = Tuple[Path, int, str, str]


def _is_public(name: str) -> bool:
    """Whether *name* is part of the public surface (no leading underscore)."""
    return not name.startswith("_")


def _docstring_violations(
    node: ast.AST, code: str, label: str, path: Path
) -> Iterator[Violation]:
    """Yield missing/malformed-docstring violations for one definition."""
    lineno = getattr(node, "lineno", 1)
    docstring = ast.get_docstring(node, clean=True)
    if not docstring:
        yield (path, lineno, code, f"missing docstring on {label}")
        return
    summary = docstring.splitlines()[0].strip()
    if not summary:
        yield (path, lineno, "DOC200", f"empty docstring summary line on {label}")
    elif not summary.endswith(SUMMARY_TERMINATORS):
        yield (
            path,
            lineno,
            "DOC201",
            f"docstring summary of {label} should end with one of "
            f"{'/'.join(SUMMARY_TERMINATORS)}: {summary!r}",
        )


def _walk_definitions(path: Path, tree: ast.Module) -> Iterator[Violation]:
    """Yield violations for the module and its public top-level definitions."""
    yield from _docstring_violations(tree, "DOC100", f"module {path.name}", path)
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _is_public(node.name):
            yield from _docstring_violations(
                node, "DOC101", f"class {node.name}", path
            )
            for member in node.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and _is_public(member.name):
                    yield from _docstring_violations(
                        member, "DOC102", f"method {node.name}.{member.name}", path
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_public(
            node.name
        ):
            yield from _docstring_violations(
                node, "DOC102", f"function {node.name}", path
            )


def lint(scopes=SCOPES) -> List[Violation]:
    """Lint every ``*.py`` file under *scopes* and return all violations."""
    violations: List[Violation] = []
    for scope in scopes:
        for path in sorted(scope.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            violations.extend(_walk_definitions(path, tree))
    return violations


def main() -> int:
    """CLI entry point: print violations, return a shell exit code."""
    violations = lint()
    for path, lineno, code, message in violations:
        print(f"{path.relative_to(REPO_ROOT)}:{lineno}: {code} {message}")
    if violations:
        print(f"{len(violations)} docstring violation(s)")
        return 1
    print("docstring lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
