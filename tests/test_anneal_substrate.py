"""Tests for the annealing substrate: BQM, schedules, SA sampler, exact solver."""

import numpy as np
import pytest

from repro.core import SimulationError
from repro.simulators.anneal import (
    BinaryQuadraticModel,
    ExactSolver,
    SimulatedAnnealingSampler,
    Vartype,
    beta_schedule,
    default_beta_range,
)


def cycle_bqm():
    return BinaryQuadraticModel.from_ising(
        [0, 0, 0, 0], {(0, 1): 1.0, (1, 2): 1.0, (2, 3): 1.0, (3, 0): 1.0}
    )


def test_bqm_construction_and_energy():
    bqm = cycle_bqm()
    assert bqm.num_variables == 4
    assert bqm.num_interactions == 4
    assert bqm.energy([1, -1, 1, -1]) == -4.0
    assert bqm.energy([1, 1, 1, 1]) == 4.0
    assert bqm.energy({0: 1, 1: -1, 2: 1, 3: -1}) == -4.0


def test_bqm_vectorised_energies():
    bqm = cycle_bqm()
    samples = np.array([[1, -1, 1, -1], [1, 1, 1, 1], [1, 1, -1, -1]])
    energies = bqm.energies(samples)
    assert list(energies) == [-4.0, 4.0, 0.0]


def test_bqm_domain_check():
    bqm = cycle_bqm()
    with pytest.raises(SimulationError):
        bqm.energy([0, 1, 0, 1])  # binary values in a SPIN model
    with pytest.raises(SimulationError):
        bqm.add_interaction(0, 0, 1.0)


def test_vartype_conversion_preserves_energy():
    bqm = BinaryQuadraticModel.from_ising([0.5, -0.25, 0], {(0, 1): 1.0, (1, 2): -2.0})
    binary = bqm.change_vartype(Vartype.BINARY)
    rng = np.random.default_rng(0)
    for _ in range(20):
        spins = rng.choice([-1, 1], size=3)
        bits = (spins + 1) // 2
        assert bqm.energy(spins) == pytest.approx(binary.energy(bits))
    # Round trip back to SPIN.
    back = binary.change_vartype(Vartype.SPIN)
    spins = np.array([1, -1, 1])
    assert back.energy(spins) == pytest.approx(bqm.energy(spins))


def test_qubo_round_trip():
    bqm = cycle_bqm()
    Q, offset = bqm.to_qubo()
    rebuilt = BinaryQuadraticModel.from_qubo(Q, offset)
    spins = np.array([1, -1, -1, 1])
    bits = (spins + 1) // 2
    assert rebuilt.energy(bits) == pytest.approx(bqm.energy(spins))


def test_from_graph_and_arrays():
    bqm = BinaryQuadraticModel.from_graph([(0, 1, 2.0), (1, 2, -1.0)])
    h, J, offset = bqm.to_arrays()
    assert h.shape == (3,) and J[0, 1] == 2.0 and J[1, 2] == -1.0 and offset == 0.0
    assert bqm.get_quadratic(1, 0) == 2.0
    assert bqm.get_quadratic(0, 2) == 0.0


def test_beta_schedule_shapes():
    geometric = beta_schedule(10, (0.1, 10.0), "geometric")
    linear = beta_schedule(10, (0.1, 10.0), "linear")
    assert len(geometric) == len(linear) == 10
    assert geometric[0] == pytest.approx(0.1) and geometric[-1] == pytest.approx(10.0)
    assert np.all(np.diff(geometric) > 0) and np.all(np.diff(linear) > 0)
    with pytest.raises(SimulationError):
        beta_schedule(5, (1.0, 0.1))
    with pytest.raises(SimulationError):
        beta_schedule(5, (0.1, 1.0), "sigmoid")


def test_default_beta_range_positive():
    low, high = default_beta_range(cycle_bqm())
    assert 0 < low < high


def test_exact_solver_ground_states():
    solver = ExactSolver()
    bqm = cycle_bqm()
    assert solver.ground_energy(bqm) == -4.0
    ground = solver.ground_states(bqm)
    assert len(ground) == 2
    assert set(ground.to_counts()) == {"0101", "1010"}
    spectrum = solver.sample(bqm)
    assert len(spectrum) == 16


def test_exact_solver_limits():
    solver = ExactSolver()
    with pytest.raises(SimulationError):
        solver.sample(BinaryQuadraticModel())
    big = BinaryQuadraticModel({i: 0.1 for i in range(30)}, {}, 0.0, Vartype.SPIN)
    with pytest.raises(SimulationError):
        solver.sample(big)


def test_sa_finds_cycle_ground_states():
    sampler = SimulatedAnnealingSampler()
    result = sampler.sample(cycle_bqm(), num_reads=200, num_sweeps=200, seed=3)
    assert result.first.energy == -4.0
    assert result.ground_state_probability() > 0.8
    counts = result.to_counts()
    assert set(counts.most_common(2)[i][0] for i in range(2)) == {"0101", "1010"}


def test_sa_respects_seed():
    sampler = SimulatedAnnealingSampler()
    a = sampler.sample(cycle_bqm(), num_reads=50, num_sweeps=50, seed=1)
    b = sampler.sample(cycle_bqm(), num_reads=50, num_sweeps=50, seed=1)
    assert np.array_equal(a.samples, b.samples)


def test_sa_handles_linear_biases():
    # Strong field pins every spin down (+h favours s = -1).
    bqm = BinaryQuadraticModel.from_ising([5.0, 5.0, 5.0], {})
    result = SimulatedAnnealingSampler().sample(bqm, num_reads=50, num_sweeps=100, seed=0)
    assert tuple(result.first.sample) == (-1, -1, -1)


def test_sample_ising_and_qubo_wrappers():
    sampler = SimulatedAnnealingSampler()
    ising = sampler.sample_ising([0, 0], {(0, 1): 1.0}, num_reads=20, num_sweeps=50, seed=2)
    assert ising.first.energy == -1.0
    qubo = sampler.sample_qubo({(0, 0): -1.0, (1, 1): -1.0, (0, 1): 2.0},
                               num_reads=20, num_sweeps=50, seed=2)
    assert qubo.first.energy == pytest.approx(-1.0)


def test_sampler_argument_validation():
    sampler = SimulatedAnnealingSampler()
    with pytest.raises(SimulationError):
        sampler.sample(BinaryQuadraticModel(), num_reads=1)
    with pytest.raises(SimulationError):
        sampler.sample(cycle_bqm(), num_reads=0)
    with pytest.raises(SimulationError):
        sampler.sample(cycle_bqm(), num_reads=2, initial_states=np.zeros((1, 4)))
