"""Executable QEC cycles on the stabilizer engine (ISSUE 7 satellite).

Repetition-code memory experiments are decoded against
:class:`~repro.services.qec.RepetitionCodeModel`'s closed-form logical error
rate (code capacity) and against the monotone distance-suppression expectation
(circuit level); the rotated surface code is validated structurally (noiseless
syndromes are trivial and repeat round to round).  The fast lane runs small
shot counts; the ``slow`` lane repeats the closed-form comparison at full
statistics.
"""

import numpy as np
import pytest

from repro.core.errors import ServiceError
from repro.services.qec import (
    QECService,
    RepetitionCodeModel,
    code_capacity_repetition_circuit,
    repetition_code_circuit,
    surface_code_cycle_circuit,
    surface_code_stabilizers,
)
from repro.simulators.gate import StatevectorSimulator

DISTANCES = (3, 5, 7)
PHYSICAL_P = 0.2  # far below the 50% repetition-code threshold, fast statistics


def _sigma(probability, samples):
    return float(np.sqrt(max(probability * (1.0 - probability), 1e-12) / samples))


# -- closed-form model --------------------------------------------------------------


def test_repetition_model_closed_form_values():
    model = RepetitionCodeModel()
    assert model.bitflip_probability(0.3) == pytest.approx(0.2)
    # d=3: P(>=2 of 3 flips) with q = 2p/3.
    q = model.bitflip_probability(PHYSICAL_P)
    expected = 3 * q**2 * (1 - q) + q**3
    assert model.logical_error_rate(3, PHYSICAL_P) == pytest.approx(expected)
    rates = [model.logical_error_rate(d, PHYSICAL_P) for d in DISTANCES]
    assert rates[0] > rates[1] > rates[2]
    with pytest.raises(ServiceError):
        model.logical_error_rate(4, PHYSICAL_P)
    with pytest.raises(ServiceError):
        model.bitflip_probability(1.5)


# -- code-capacity cycles vs closed form --------------------------------------------


def test_code_capacity_rates_match_closed_form_fast():
    service = QECService()
    measured = []
    for distance in DISTANCES:
        result = service.run_repetition_memory(
            distance,
            physical_error_rate=PHYSICAL_P,
            patches=4,
            shots=2048,
            seed=11,
            code_capacity=True,
        )
        assert result.metadata["trajectory_engine"] == "stabilizer"
        predicted = result.predicted_logical_error_rate
        assert predicted == pytest.approx(
            RepetitionCodeModel().logical_error_rate(distance, PHYSICAL_P)
        )
        samples = result.shots * result.patches
        tolerance = 5.0 * _sigma(predicted, samples)
        assert abs(result.logical_error_rate - predicted) < tolerance, distance
        measured.append(result.logical_error_rate)
    assert measured[0] > measured[1] > measured[2]  # distance suppresses errors


@pytest.mark.slow
@pytest.mark.parametrize("distance", DISTANCES)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_code_capacity_rates_match_closed_form_full(distance, seed):
    result = QECService().run_repetition_memory(
        distance,
        physical_error_rate=PHYSICAL_P,
        patches=8,
        shots=8192,
        seed=seed,
        code_capacity=True,
    )
    predicted = result.predicted_logical_error_rate
    samples = result.shots * result.patches
    assert abs(result.logical_error_rate - predicted) < 5.0 * _sigma(predicted, samples)


# -- circuit-level cycles -----------------------------------------------------------


def test_circuit_level_rates_decrease_with_distance():
    service = QECService()
    measured = []
    for distance in DISTANCES:
        result = service.run_repetition_memory(
            distance,
            physical_error_rate=0.03,
            rounds=2,
            patches=4,
            shots=2048,
            seed=11,
        )
        assert result.predicted_logical_error_rate is None  # no closed form
        assert result.num_qubits == 4 * (2 * distance - 1)
        measured.append(result.logical_error_rate)
    assert measured[0] > measured[1] > measured[2]


def test_distance7_cycle_at_52_qubits_is_worker_invariant():
    # The ISSUE's headline configuration: 4 patches x d=7 = 52 qubits of
    # circuit-level cycles; seeded failures must be identical at every
    # trajectory_workers setting.
    service = QECService()
    reference = None
    for workers in (1, 2, 4):
        result = service.run_repetition_memory(
            7,
            physical_error_rate=0.02,
            rounds=7,
            patches=4,
            shots=1024,
            seed=5,
            trajectory_workers=workers,
        )
        assert result.num_qubits == 52
        if reference is None:
            reference = result.logical_failures
        assert result.logical_failures == reference, workers


def test_code_capacity_rejects_multiple_rounds():
    with pytest.raises(ServiceError):
        QECService().run_repetition_memory(
            3, physical_error_rate=0.1, rounds=2, code_capacity=True
        )


# -- circuit builders ---------------------------------------------------------------


def test_repetition_circuit_shapes():
    circuit = repetition_code_circuit(5, rounds=3, patches=2)
    assert circuit.num_qubits == 2 * (2 * 5 - 1)
    assert circuit.num_clbits == 2 * (3 * 4 + 5)
    flat = code_capacity_repetition_circuit(7, patches=3)
    assert flat.num_qubits == 21
    assert flat.num_clbits == 21


def test_surface_code_stabilizer_count_and_balance():
    for distance in (3, 5, 7):
        stabilizers = surface_code_stabilizers(distance)
        assert len(stabilizers) == distance**2 - 1
        x_type = sum(1 for kind, _ in stabilizers if kind == "x")
        assert x_type == (distance**2 - 1) // 2
        for _, data in stabilizers:
            assert len(data) in (2, 4)
            assert all(0 <= q < distance**2 for q in data)


def test_surface_code_noiseless_syndromes_are_trivial_and_repeat():
    # On the noiseless |0...0> memory, every Z-type syndrome bit is exactly 0
    # in every round, and X-type syndromes (random on the first round, since
    # |0...0> is not an X-stabilizer eigenstate) repeat identically in later
    # rounds — the projective collapse of round 1 fixes them.
    distance, rounds = 3, 2
    stabilizers = surface_code_stabilizers(distance)
    num_stab = len(stabilizers)
    circuit = surface_code_cycle_circuit(distance, rounds=rounds)
    result = StatevectorSimulator(trajectory_engine="stabilizer").run(
        circuit, shots=128, seed=9
    )
    saw_nonzero_x = False
    for key in result.counts:
        for s, (kind, _) in enumerate(stabilizers):
            bits = [key[rnd * num_stab + s] for rnd in range(rounds)]
            if kind == "z":
                assert bits == ["0"] * rounds, (s, key)
            else:
                assert len(set(bits)) == 1, (s, key)  # repeats round to round
                saw_nonzero_x = saw_nonzero_x or bits[0] == "1"
        # Data readout stays in the Z-stabilizer group: all-zero logical 0
        # would require decoding; here just check the bits exist.
        assert len(key) == rounds * num_stab + distance**2
    assert saw_nonzero_x  # X syndromes really are random, not stuck at 0


@pytest.mark.slow
def test_surface_code_wide_cycle_runs_on_stabilizer_engine():
    circuit = surface_code_cycle_circuit(9, rounds=2)
    assert circuit.num_qubits == 2 * 81 - 1
    result = StatevectorSimulator(trajectory_engine="stabilizer").run(
        circuit, shots=64, seed=3
    )
    assert sum(result.counts.values()) == 64
