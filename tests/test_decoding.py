"""Tests for result-schema-driven decoding of counts."""

from fractions import Fraction

import pytest

from repro.core import DecodingError, ResultSchema, integer_register, ising_register, phase_register
from repro.results import Counts, decode_counts


def test_decode_boolean_register(ising_vars):
    schema = ResultSchema.for_register(ising_vars)
    counts = Counts({"0101": 600, "1010": 400})
    decoded = decode_counts(counts, schema, {ising_vars.id: ising_vars})
    reg = decoded.single()
    assert reg.shots == 1000
    assert reg.most_likely().value == (0, 1, 0, 1)
    dist = reg.distribution()
    assert abs(dist[(0, 1, 0, 1)] - 0.6) < 1e-12


def test_decode_phase_register(reg_phase10):
    schema = ResultSchema.for_register(reg_phase10)
    counts = Counts({"0000000110": 900, "0000000000": 100})
    decoded = decode_counts(counts, schema, {reg_phase10.id: reg_phase10})
    reg = decoded["reg_phase"]
    assert reg.most_likely().value == Fraction(3, 8)
    expectation = reg.expectation(lambda v: float(v))
    assert abs(expectation - 0.9 * 0.375) < 1e-12


def test_decode_respects_clbit_order():
    reg = integer_register("n", 3)
    # clbit 0 holds carrier 2, clbit 2 holds carrier 0 (reversed wiring)
    schema = ResultSchema(
        basis="Z", datatype="AS_INT", bit_significance="LSB_0",
        clbit_order=["n[2]", "n[1]", "n[0]"],
    )
    counts = Counts({"100": 10})  # clbit0=1 -> carrier2=1 -> value 4
    decoded = decode_counts(counts, schema, {"n": reg})
    assert decoded["n"].most_likely().value == 4


def test_decode_multi_register():
    a = integer_register("a", 2)
    b = ising_register("b", 1)
    schema = ResultSchema(
        basis="Z", datatype="AS_BOOL",
        clbit_order=["a[0]", "a[1]", "b[0]"],
    )
    counts = Counts({"101": 7, "011": 3})
    decoded = decode_counts(counts, schema, {"a": a, "b": b})
    assert decoded.register_ids() == ["a", "b"]
    assert decoded["a"].most_likely().value == 1  # bits "10" -> LSB_0 -> 1
    assert decoded["b"].most_likely().value == (1,)
    with pytest.raises(DecodingError):
        decoded.single()


def test_width_mismatch_rejected(ising_vars):
    schema = ResultSchema.for_register(ising_vars)
    with pytest.raises(DecodingError):
        decode_counts(Counts({"01": 5}), schema, {ising_vars.id: ising_vars})


def test_unknown_register_rejected(ising_vars):
    schema = ResultSchema(basis="Z", datatype="AS_BOOL", clbit_order=["ghost[0]"])
    with pytest.raises(Exception):
        decode_counts(Counts({"0": 1}), schema, {ising_vars.id: ising_vars})


def test_raw_counts_preserved(ising_vars):
    schema = ResultSchema.for_register(ising_vars)
    counts = Counts({"0101": 1})
    decoded = decode_counts(counts, schema, {ising_vars.id: ising_vars})
    assert decoded.raw_counts is counts
