"""Property tests for the batched trajectory engine.

The batched engine must be *observably equivalent* to the per-shot reference:
identical states on unitary circuits (exact linear algebra), and
distribution-equivalent samples on measuring/noisy circuits (the RNG streams
differ, so equivalence is statistical — checked with a two-sample chi-square
test at fixed seeds).
"""

import math

import numpy as np
import pytest

from repro.core import SimulationError
from repro.simulators.gate import (
    BatchedStatevector,
    Circuit,
    NoiseModel,
    Statevector,
    StatevectorSimulator,
    cached_gate_matrix,
)
from repro.simulators.gate.fusion import (
    GateStep,
    TerminalSample,
    compile_trajectory_program,
)
from repro.simulators.gate.gates import cached_gate_plan, gate_matrix


def chi_square_equivalent(counts_a, counts_b, significance_z=3.3):
    """Two-sample chi-square test that both histograms share a distribution.

    Returns True when the statistic is below the (Wilson–Hilferty
    approximated) critical value at roughly the 5e-4 level — loose enough to
    be stable under fixed seeds, tight enough to catch a wrong channel.
    """
    total_a, total_b = counts_a.shots, counts_b.shots
    scale_a = math.sqrt(total_b / total_a)
    scale_b = math.sqrt(total_a / total_b)
    statistic, cells = 0.0, 0
    for key in set(counts_a) | set(counts_b):
        observed_a = counts_a.get(key, 0)
        observed_b = counts_b.get(key, 0)
        statistic += (scale_a * observed_a - scale_b * observed_b) ** 2 / (
            observed_a + observed_b
        )
        cells += 1
    dof = max(cells - 1, 1)
    critical = dof * (
        1 - 2 / (9 * dof) + significance_z * math.sqrt(2 / (9 * dof))
    ) ** 3
    return statistic <= critical


def random_unitary_circuit(num_qubits, seed, layers=3):
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits)
    oneq = ("h", "x", "s", "t", "sx")
    for _ in range(layers):
        for q in range(num_qubits):
            name = oneq[rng.integers(len(oneq))]
            circuit.append(name, [q])
            circuit.rz(float(rng.uniform(-np.pi, np.pi)), q)
        order = rng.permutation(num_qubits)
        for i in range(0, num_qubits - 1, 2):
            circuit.cx(int(order[i]), int(order[i + 1]))
        circuit.rzz(float(rng.uniform(-1, 1)), 0, num_qubits - 1)
        circuit.ccx(0, 1, 2)
    return circuit


# -- unitary equivalence ----------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batched_matches_single_shot_on_unitary_circuits(seed):
    circuit = random_unitary_circuit(5, seed)
    single = Statevector(5).evolve(circuit)
    batched = BatchedStatevector(5, 4)
    for inst in circuit.instructions:
        batched.apply_gate(inst.name, inst.qubits, inst.params)
    for shot in range(4):
        assert np.allclose(batched.data[shot], single.data, atol=1e-10)


def test_batched_complex64_matches_within_single_precision():
    circuit = random_unitary_circuit(6, seed=7)
    single = Statevector(6).evolve(circuit)
    batched = BatchedStatevector(6, 3, dtype=np.complex64)
    for inst in circuit.instructions:
        batched.apply_gate(inst.name, inst.qubits, inst.params)
    assert np.allclose(batched.data[1], single.data, atol=1e-4)


def test_batched_dense_2q_reversed_qubit_order():
    # The adjacent dense-2q GEMM conjugates by SWAP when the gate's first
    # qubit is the later axis; check against the single-shot path.
    circuit = Circuit(3)
    circuit.h(0).h(1).h(2)
    circuit.append("cry", [2, 1], [0.8])
    circuit.append("rxx", [1, 0], [0.5])
    single = Statevector(3).evolve(circuit)
    batched = BatchedStatevector(3, 2)
    for inst in circuit.instructions:
        batched.apply_gate(inst.name, inst.qubits, inst.params)
    assert np.allclose(batched.data[0], single.data, atol=1e-10)


def test_batched_apply_matrix_validates():
    state = BatchedStatevector(2, 3)
    with pytest.raises(SimulationError):
        state.apply_matrix(np.eye(2, dtype=complex), [0, 1])
    with pytest.raises(SimulationError):
        state.apply_matrix(np.eye(2, dtype=complex), [5])
    with pytest.raises(SimulationError):
        state.apply_matrix(np.eye(4, dtype=complex), [1, 1])


def test_duplicate_qubits_rejected_on_fast_paths():
    with pytest.raises(SimulationError):
        Statevector(2).apply_gate("cx", [1, 1])
    with pytest.raises(SimulationError):
        BatchedStatevector(2, 2).apply_gate("cx", [0, 0])


def test_batched_measure_and_reset_deterministic_cases():
    rng = np.random.default_rng(0)
    state = BatchedStatevector(2, 5)
    state.apply_gate("x", [1])
    outcomes = state.measure(1, rng)
    assert outcomes.tolist() == [1] * 5
    assert np.allclose(state.norms(), 1.0)
    state.reset(1, rng)
    zeros = state.measure(1, rng)
    assert zeros.tolist() == [0] * 5


# -- distribution equivalence -----------------------------------------------------

def run_both_engines(circuit, noise_model, shots, seed):
    batched = StatevectorSimulator(noise_model=noise_model).run(
        circuit, shots=shots, seed=seed
    )
    reference = StatevectorSimulator(
        noise_model=noise_model, trajectory_engine="reference"
    ).run(circuit, shots=shots, seed=seed)
    assert batched.metadata["method"] == "trajectories"
    assert batched.metadata["trajectory_engine"] == "batched"
    assert reference.metadata["trajectory_engine"] == "reference"
    assert batched.counts.shots == reference.counts.shots == shots
    return batched.counts, reference.counts


def test_mid_circuit_measurement_distribution_equivalence():
    circuit = Circuit(2, 3)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.h(0).cx(0, 1)
    circuit.measure(0, 1)
    circuit.measure(1, 2)
    counts_b, counts_r = run_both_engines(circuit, None, shots=4000, seed=17)
    assert chi_square_equivalent(counts_b, counts_r)
    for key in counts_b:  # entangled pair: last two bits always agree
        assert key[1] == key[2]


def test_reset_distribution_equivalence():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1)
    circuit.reset(0)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.measure(1, 1)
    counts_b, counts_r = run_both_engines(circuit, None, shots=4000, seed=23)
    assert chi_square_equivalent(counts_b, counts_r)


def test_noisy_distribution_equivalence():
    circuit = Circuit(3, 3)
    circuit.h(0).cx(0, 1).cx(1, 2).measure_all()
    noise = NoiseModel(oneq_error=0.02, twoq_error=0.05, readout_error=0.02)
    counts_b, counts_r = run_both_engines(circuit, noise, shots=8000, seed=31)
    assert chi_square_equivalent(counts_b, counts_r)


def test_fused_run_noise_distribution_equivalence():
    # Deep 1q runs exercise the noise-pushing conjugation inside fused blocks.
    circuit = Circuit(2, 2)
    for _ in range(5):
        circuit.h(0).t(0)
        circuit.rx(0.4, 1).rz(0.2, 1)
    circuit.cx(0, 1)
    circuit.measure_all()
    noise = NoiseModel(oneq_error=0.08, twoq_error=0.1)
    counts_b, counts_r = run_both_engines(circuit, noise, shots=8000, seed=41)
    assert chi_square_equivalent(counts_b, counts_r)


def test_batched_counts_deterministic_for_fixed_seed():
    circuit = Circuit(2, 2)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.cx(0, 1)
    circuit.measure(1, 1)
    simulator = StatevectorSimulator(
        noise_model=NoiseModel(oneq_error=0.01, readout_error=0.05)
    )
    first = simulator.run(circuit, shots=600, seed=99).counts
    second = simulator.run(circuit, shots=600, seed=99).counts
    assert dict(first) == dict(second)


# -- memory chunking --------------------------------------------------------------

def test_max_batch_memory_chunks_shots():
    circuit = Circuit(3, 3)
    circuit.h(0).cx(0, 1).reset(2)
    circuit.measure_all()
    # 3 qubits, complex64: 2 buffers x 8 bytes x 8 amplitudes = 128 B/shot.
    simulator = StatevectorSimulator(max_batch_memory=128 * 16)
    result = simulator.run(circuit, shots=100, seed=5)
    assert result.metadata["batch_size"] == 16
    assert result.metadata["num_batches"] == math.ceil(100 / 16)
    assert result.counts.shots == 100
    repeat = simulator.run(circuit, shots=100, seed=5)
    assert dict(repeat.counts) == dict(result.counts)
    unchunked = StatevectorSimulator(max_batch_memory=None).run(
        circuit, shots=4000, seed=5
    )
    assert unchunked.metadata["num_batches"] == 1
    chunked = StatevectorSimulator(max_batch_memory=128 * 16).run(
        circuit, shots=4000, seed=5
    )
    assert chi_square_equivalent(unchunked.counts, chunked.counts)


def test_invalid_engine_options_rejected():
    with pytest.raises(SimulationError):
        StatevectorSimulator(trajectory_engine="warp")
    with pytest.raises(SimulationError):
        StatevectorSimulator(trajectory_dtype="float16")
    with pytest.raises(SimulationError):
        StatevectorSimulator(max_batch_memory=0)


# -- compiled program structure ---------------------------------------------------

def test_fusion_collapses_1q_runs():
    circuit = Circuit(2, 2)
    circuit.h(0).t(0).rz(0.3, 0)
    circuit.h(1)
    circuit.rzz(0.5, 0, 1)  # diagonal 2q: not absorbed, flushes both runs
    circuit.measure_all()
    program = compile_trajectory_program(circuit)
    gate_steps = [s for s in program.steps if isinstance(s, GateStep)]
    assert len(gate_steps) == 3  # fused run on q0, fused run on q1, rzz
    assert isinstance(program.terminal, TerminalSample)
    assert program.terminal.pairs == ((0, 0), (1, 1))
    expected = (
        gate_matrix("rz", [0.3]) @ gate_matrix("t") @ gate_matrix("h")
    )
    fused = [s for s in gate_steps if s.qubits == (0,)][0]
    assert np.allclose(fused.matrix, expected)


def test_fusion_absorbs_1q_runs_into_adjacent_2q():
    circuit = Circuit(2, 2)
    circuit.h(0).h(1).cx(0, 1)
    circuit.measure_all()
    program = compile_trajectory_program(circuit)
    gate_steps = [s for s in program.steps if isinstance(s, GateStep)]
    assert len(gate_steps) == 1
    expected = gate_matrix("cx") @ np.kron(gate_matrix("h"), gate_matrix("h"))
    assert np.allclose(gate_steps[0].matrix, expected)


def test_terminal_peel_respects_clbit_last_write_wins():
    # Regression: measure(0,0) is followed by measure(1,0) writing the SAME
    # clbit; peeling the earlier measure into the terminal sample would let
    # its value overwrite the later one.  The final value of c0 must come
    # from measure(1, 0) — always 0 here.
    circuit = Circuit(2, 1)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.measure(1, 0)  # qubit 1 is |0>; overwrites c0
    circuit.h(1)           # touches q1 afterwards: that measure is mid-circuit
    program = compile_trajectory_program(circuit)
    assert program.terminal is None  # neither measure is peelable
    batched = StatevectorSimulator().run(circuit, shots=1000, seed=3).counts
    reference = StatevectorSimulator(trajectory_engine="reference").run(
        circuit, shots=1000, seed=3
    ).counts
    assert dict(batched) == {"0": 1000}
    assert dict(reference) == {"0": 1000}


def test_implicit_statevector_is_pre_measurement():
    circuit = Circuit(1)
    circuit.h(0)
    noisy = StatevectorSimulator(noise_model=NoiseModel(oneq_error=1e-6))
    result = noisy.run(circuit, shots=10, seed=0, return_statevector=True)
    assert result.metadata["method"] == "trajectories"
    assert result.metadata["statevector_kind"] == "pre_measurement"
    probs = result.statevector.probability_dict()
    assert abs(probs.get("0", 0.0) - 0.5) < 1e-3  # superposition, not collapsed


def test_backend_options_reach_the_simulator():
    from repro.backends import GateBackend
    from repro.problems import MaxCutProblem
    from repro.workflows import build_qaoa_bundle

    bundle = build_qaoa_bundle(MaxCutProblem.cycle(4))
    options = bundle.context.exec.options
    options["noise"] = {"oneq_error": 1e-3}
    options["trajectory_dtype"] = "complex128"
    options["max_batch_memory"] = 1 << 22
    result = GateBackend().run(bundle)
    assert result.metadata["simulation_method"] == "trajectories"
    assert result.metadata["trajectory_engine"] == "batched"
    assert result.metadata["num_batches"] >= 1


def test_terminal_sampling_preserves_nonterminal_measures():
    circuit = Circuit(1, 2)
    circuit.h(0)
    circuit.measure(0, 0)  # non-terminal: the x below touches q0 again
    circuit.x(0)
    circuit.measure(0, 1)  # terminal
    program = compile_trajectory_program(circuit)
    assert program.terminal is not None
    assert program.terminal.pairs == ((0, 1),)
    result = StatevectorSimulator().run(circuit, shots=400, seed=13)
    for key in result.counts:  # second measurement complements the first
        assert key[0] != key[1]


def test_cached_gate_matrix_is_shared_and_frozen():
    first = cached_gate_matrix("rz", (0.25,))
    second = cached_gate_matrix("rz", (0.25,))
    assert first is second
    assert not first.flags.writeable
    assert np.allclose(first, gate_matrix("rz", (0.25,)))
    plan = cached_gate_plan("rz", (0.25,))
    assert plan.is_diagonal
    assert cached_gate_plan("cx").rows == ((2, ((3, 1 + 0j),)), (3, ((2, 1 + 0j),)))
