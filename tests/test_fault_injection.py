"""Tests for deterministic fault injection and executor crash recovery.

The headline contract: a run whose worker is **killed mid-flight** recovers
by re-dispatching only the lost chunk groups on a fresh pool — with the
original per-chunk ``SeedSequence`` streams — so recovered seeded counts are
*bit-identical* to an uncrashed run, for both the batched and stabilizer
engines and at every worker count.  Around it: the :class:`FaultPlan` data
model (seeded determinism, dict round-trip), the transient/permanent error
taxonomy, reassembly validation, the recovery budget, and the
generation/lease pool that lets growth coexist with in-flight runs.
"""

import numpy as np
import pytest

from repro.core import SimulationError
from repro.core.errors import (
    ChunkReassemblyError,
    DeadlineExceededError,
    QueueFullError,
    TransientExecutionError,
    WorkerCrashError,
    is_pool_breakage,
    is_transient_error,
)
from repro.simulators.gate import Circuit, NoiseModel, StatevectorSimulator
from repro.simulators.gate.faults import FAULT_KINDS, FaultEvent, FaultPlan


@pytest.fixture(scope="module")
def process_pool():
    """Tear the persistent worker pool down after this module's tests."""
    from repro.simulators.gate.procpool import shutdown_worker_pool

    yield
    shutdown_worker_pool()


def noisy_circuit():
    circuit = Circuit(3, 3)
    circuit.h(0).cx(0, 1).cx(1, 2)
    circuit.measure_all()
    return circuit, NoiseModel(oneq_error=0.02, twoq_error=0.05, readout_error=0.02)


def ghz_stabilizer_kwargs(workers):
    circuit = Circuit(4, 4)
    circuit.h(0).cx(0, 1).cx(1, 2).cx(2, 3)
    circuit.measure_all()
    noise = NoiseModel(oneq_error=0.01, twoq_error=0.02, readout_error=0.01)
    kwargs = dict(
        noise_model=noise,
        trajectory_engine="stabilizer",
        max_batch_memory=64,
        trajectory_workers=workers,
    )
    return circuit, kwargs


# -- FaultPlan data model -----------------------------------------------------------

def test_fault_event_validation():
    with pytest.raises(SimulationError, match="unknown fault kind"):
        FaultEvent(kind="explode", chunk_id=0)
    with pytest.raises(SimulationError, match="chunk_id"):
        FaultEvent(kind="raise", chunk_id=-1)
    with pytest.raises(SimulationError, match="attempt"):
        FaultEvent(kind="raise", chunk_id=0, attempt=-1)
    with pytest.raises(SimulationError, match="hang_s"):
        FaultEvent(kind="hang", chunk_id=0, hang_s=-0.1)
    assert FaultEvent(kind="kill", chunk_id=2, attempt=1).to_dict() == {
        "kind": "kill",
        "chunk_id": 2,
        "attempt": 1,
        "hang_s": 0.05,
    }


def test_fault_plan_rejects_duplicate_sites():
    events = [FaultEvent("raise", 0), FaultEvent("kill", 0)]
    with pytest.raises(SimulationError, match="duplicate fault"):
        FaultPlan(events)


def test_fault_plan_lookup_and_roundtrip():
    plan = FaultPlan([FaultEvent("raise", 1), FaultEvent("kill", 3, attempt=1)])
    assert len(plan) == 2
    assert plan.event_for(1, 0).kind == "raise"
    assert plan.event_for(3, 1).kind == "kill"
    assert plan.event_for(3, 0) is None
    assert plan.event_for(7, 0) is None
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    assert FaultPlan.coerce(plan) is plan
    assert FaultPlan.coerce(None) is None
    assert FaultPlan.coerce(plan.to_dict()) == plan
    with pytest.raises(SimulationError, match="fault_plan must be"):
        FaultPlan.coerce("kill everything")
    with pytest.raises(SimulationError, match="'events' list or a seeded spec"):
        FaultPlan.from_dict({"kaboom": 1})


def test_seeded_plans_are_deterministic():
    kwargs = dict(num_chunks=16, kinds=FAULT_KINDS, events=4, max_attempt=1)
    plan_a = FaultPlan.seeded(42, **kwargs)
    plan_b = FaultPlan.seeded(42, **kwargs)
    assert plan_a == plan_b
    assert len(plan_a) == 4
    assert plan_a != FaultPlan.seeded(43, **kwargs)
    # Sites are distinct and within range, by construction.
    sites = {(e.chunk_id, e.attempt) for e in plan_a.events}
    assert len(sites) == 4
    assert all(0 <= c < 16 and 0 <= a <= 1 for c, a in sites)
    # The seeded spec round-trips through the dict form too.
    from_spec = FaultPlan.from_dict({"seed": 42, **kwargs})
    assert from_spec == plan_a
    with pytest.raises(SimulationError, match="num_chunks"):
        FaultPlan.seeded(1, num_chunks=0)
    with pytest.raises(SimulationError, match="unknown fault kind"):
        FaultPlan.seeded(1, num_chunks=4, kinds=("melt",))


# -- error taxonomy -----------------------------------------------------------------

def test_transient_and_breakage_classification():
    from concurrent.futures import BrokenExecutor
    from concurrent.futures.process import BrokenProcessPool

    assert is_transient_error(TransientExecutionError("x"))
    assert is_transient_error(WorkerCrashError("x", rebuilds=2))
    assert is_transient_error(BrokenExecutor())
    assert is_transient_error(BrokenProcessPool())
    assert not is_transient_error(RuntimeError("x"))
    assert not is_transient_error(DeadlineExceededError("x"))
    assert is_pool_breakage(WorkerCrashError("x"))
    assert is_pool_breakage(BrokenProcessPool())
    assert not is_pool_breakage(TransientExecutionError("x"))
    assert not is_pool_breakage(QueueFullError("x"))
    assert WorkerCrashError("x", rebuilds=3).rebuilds == 3


def test_chunk_reassembly_error_is_typed():
    from repro.simulators.gate.procpool import _require_complete

    rows = [np.zeros((1, 1)), None, np.zeros((1, 1)), None]
    with pytest.raises(ChunkReassemblyError) as excinfo:
        _require_complete(rows)
    assert excinfo.value.missing == (1, 3)
    assert excinfo.value.total == 4
    _require_complete([np.zeros((1, 1))])  # complete rows pass silently


# -- crash recovery: bit-identity ---------------------------------------------------

@pytest.mark.parametrize("workers", [2, 4])
def test_killed_worker_recovers_bit_identical_batched(workers, process_pool):
    circuit, noise = noisy_circuit()
    kwargs = dict(
        noise_model=noise, max_batch_memory=128 * 32, trajectory_workers=workers
    )
    clean = StatevectorSimulator(trajectory_executor="process", **kwargs).run(
        circuit, shots=900, seed=71
    )
    assert clean.metadata["executor_recovery"] == {
        "pool_rebuilds": 0,
        "groups_redispatched": 0,
    }
    crashed = StatevectorSimulator(
        trajectory_executor="process",
        fault_plan=FaultPlan([FaultEvent("kill", chunk_id=0)]),
        **kwargs,
    ).run(circuit, shots=900, seed=71)
    recovery = crashed.metadata["executor_recovery"]
    assert recovery["pool_rebuilds"] == 1
    assert recovery["groups_redispatched"] >= 1
    # The recovered run re-drew from the original SeedSequence streams.
    assert dict(crashed.counts) == dict(clean.counts)


@pytest.mark.parametrize("workers", [2, 4])
def test_killed_worker_recovers_bit_identical_stabilizer(workers, process_pool):
    circuit, kwargs = ghz_stabilizer_kwargs(workers)
    clean = StatevectorSimulator(trajectory_executor="process", **kwargs).run(
        circuit, shots=1500, seed=13
    )
    crashed = StatevectorSimulator(
        trajectory_executor="process",
        fault_plan=FaultPlan([FaultEvent("kill", chunk_id=1)]),
        **kwargs,
    ).run(circuit, shots=1500, seed=13)
    assert crashed.metadata["trajectory_engine"] == "stabilizer"
    assert crashed.metadata["executor_recovery"]["pool_rebuilds"] == 1
    assert dict(crashed.counts) == dict(clean.counts)


def test_raise_fault_propagates_as_transient(process_pool):
    circuit, noise = noisy_circuit()
    simulator = StatevectorSimulator(
        trajectory_executor="process",
        noise_model=noise,
        max_batch_memory=128 * 32,
        trajectory_workers=2,
        fault_plan=FaultPlan([FaultEvent("raise", chunk_id=0)]),
    )
    with pytest.raises(TransientExecutionError, match="injected fault"):
        simulator.run(circuit, shots=900, seed=71)


def test_hang_fault_is_benign_and_kill_is_noop_on_threads():
    circuit, noise = noisy_circuit()
    kwargs = dict(
        noise_model=noise, max_batch_memory=128 * 32, trajectory_workers=2
    )
    clean = StatevectorSimulator(**kwargs).run(circuit, shots=300, seed=9)
    # A hang stalls the chunk then runs it normally; a kill on the thread
    # executor is a documented no-op.  Either way: bit-identical counts.
    plan = FaultPlan(
        [FaultEvent("hang", chunk_id=0, hang_s=0.01), FaultEvent("kill", chunk_id=1)]
    )
    faulted = StatevectorSimulator(fault_plan=plan, **kwargs).run(
        circuit, shots=300, seed=9
    )
    assert dict(faulted.counts) == dict(clean.counts)


def test_repeated_kills_exhaust_recovery_budget(process_pool):
    from repro.simulators.gate.procpool import MAX_POOL_REBUILDS

    circuit, noise = noisy_circuit()
    # Kill chunk 0 on every attempt the budget allows, plus one more.
    plan = FaultPlan(
        [
            FaultEvent("kill", chunk_id=0, attempt=a)
            for a in range(MAX_POOL_REBUILDS + 1)
        ]
    )
    simulator = StatevectorSimulator(
        trajectory_executor="process",
        noise_model=noise,
        max_batch_memory=128 * 32,
        trajectory_workers=2,
        fault_plan=plan,
    )
    with pytest.raises(WorkerCrashError) as excinfo:
        simulator.run(circuit, shots=900, seed=71)
    assert excinfo.value.rebuilds == MAX_POOL_REBUILDS + 1
    assert is_transient_error(excinfo.value)  # the serving layer may retry


def test_fault_plan_knob_rides_the_backend(process_pool):
    from repro.backends import GateBackend
    from repro.problems import MaxCutProblem
    from repro.workflows import build_qaoa_bundle

    bundle = build_qaoa_bundle(MaxCutProblem.cycle(4))
    options = bundle.context.exec.options
    options["noise"] = {"oneq_error": 1e-3}
    options["max_batch_memory"] = 4096
    options["trajectory_executor"] = "process"
    clean = GateBackend().run(bundle)
    # The knob takes the JSON-safe dict spec, so it rides bundles/digests.
    options["fault_plan"] = {"events": [{"kind": "kill", "chunk_id": 0}]}
    crashed = GateBackend().run(bundle)
    assert crashed.metadata["executor_recovery"]["pool_rebuilds"] == 1
    assert dict(crashed.counts) == dict(clean.counts)

    options["fault_plan"] = "not a plan"
    from repro.core import BackendError

    with pytest.raises(BackendError, match="fault_plan must be"):
        GateBackend().run(bundle)


def test_executor_health_counters_accumulate(process_pool):
    from repro.simulators.gate.procpool import executor_health

    circuit, noise = noisy_circuit()
    before = executor_health()
    StatevectorSimulator(
        trajectory_executor="process",
        noise_model=noise,
        max_batch_memory=128 * 32,
        trajectory_workers=2,
        fault_plan=FaultPlan([FaultEvent("kill", chunk_id=0)]),
    ).run(circuit, shots=900, seed=71)
    after = executor_health()
    assert after["pool_rebuilds"] == before["pool_rebuilds"] + 1
    assert after["groups_redispatched"] > before["groups_redispatched"]
    assert after["generations_retired"] > before["generations_retired"]


# -- generation/lease pool ----------------------------------------------------------

def test_growth_does_not_strand_inflight_lease(process_pool):
    from repro.simulators.gate import procpool

    procpool.shutdown_worker_pool()
    small = procpool._acquire_pool(2)
    assert small.leases == 1
    # A concurrent grow retires the small generation but must not shut it
    # down while the lease is live: its executor still runs work.
    large = procpool._acquire_pool(4)
    assert large is not small
    assert small.retired
    assert small.executor.submit(int, "7").result() == 7
    procpool._release_pool(small)  # last lease out -> generation shuts down
    with pytest.raises(RuntimeError):
        small.executor.submit(int, "7")
    assert large.executor.submit(int, "8").result() == 8
    procpool._release_pool(large)
    assert procpool.worker_pool_info() == {"workers": 4, "started": 1}
    procpool.shutdown_worker_pool()


def test_legacy_get_worker_pool_contract(process_pool):
    from repro.simulators.gate.procpool import (
        get_worker_pool,
        shutdown_worker_pool,
        worker_pool_info,
    )

    shutdown_worker_pool()
    pool2 = get_worker_pool(2)
    assert worker_pool_info() == {"workers": 2, "started": 1}
    assert get_worker_pool(1) is pool2  # smaller request reuses the warm pool
    pool4 = get_worker_pool(4)
    assert pool4 is not pool2
    assert worker_pool_info()["workers"] == 4
    shutdown_worker_pool()
    assert worker_pool_info() == {"workers": 0, "started": 0}


# -- seeded chaos sweep (slow lane) -------------------------------------------------

@pytest.mark.slow
@pytest.mark.parametrize("seed", range(6))
def test_chaos_sweep_recovers_bit_identical(seed, process_pool):
    """Randomized-but-seeded kill/hang plans never corrupt seeded counts."""
    circuit, noise = noisy_circuit()
    kwargs = dict(
        noise_model=noise, max_batch_memory=128 * 32, trajectory_workers=4
    )
    clean = StatevectorSimulator(trajectory_executor="process", **kwargs).run(
        circuit, shots=900, seed=71
    )
    plan = FaultPlan.seeded(
        seed, num_chunks=8, kinds=("kill", "hang"), events=2, hang_s=0.02
    )
    chaotic = StatevectorSimulator(
        trajectory_executor="process", fault_plan=plan, **kwargs
    ).run(circuit, shots=900, seed=71)
    recovery = chaotic.metadata["executor_recovery"]
    kills = sum(1 for event in plan.events if event.kind == "kill")
    assert (recovery["pool_rebuilds"] > 0) == (kills > 0)
    assert dict(chaotic.counts) == dict(clean.counts)
