"""Tests for counts histograms."""

import numpy as np
import pytest

from repro.core import DecodingError
from repro.results import Counts


def test_basic_statistics():
    counts = Counts({"00": 600, "11": 400})
    assert counts.shots == 1000
    assert counts.num_clbits == 2
    assert counts.probability("00") == 0.6
    assert counts.probability("01") == 0.0
    assert counts.argmax() == "00"
    assert counts.most_common(1) == [("00", 600)]
    probs = counts.probabilities()
    assert abs(sum(probs.values()) - 1.0) < 1e-12


def test_invalid_keys_rejected():
    with pytest.raises(DecodingError):
        Counts({"0x": 1})
    with pytest.raises(DecodingError):
        Counts({"00": 1, "000": 1})
    with pytest.raises(DecodingError):
        Counts({"00": -1})


def test_zero_counts_dropped():
    counts = Counts({"00": 0, "11": 5})
    assert "00" not in counts and counts.shots == 5


def test_non_integral_counts_rejected():
    with pytest.raises(DecodingError):
        Counts({"0": 2.7})  # must not silently truncate to 2
    with pytest.raises(DecodingError):
        Counts({"0": "3"})
    with pytest.raises(DecodingError):
        Counts({"0": float("nan")})


def test_integer_valued_counts_accepted():
    counts = Counts({"0": 600.0, "1": np.int64(400)})
    assert counts["0"] == 600 and counts["1"] == 400
    assert all(isinstance(v, int) for v in counts.values())


def test_from_samples_and_array():
    counts = Counts.from_samples(["01", "01", "10"])
    assert counts["01"] == 2 and counts["10"] == 1
    array_counts = Counts.from_array(np.array([[0, 1], [0, 1], [1, 0]]))
    assert dict(array_counts) == dict(counts)


def test_from_array_coerces_truthy_values():
    # Non-binary truthy entries count as 1, matching the row-join semantics.
    assert dict(Counts.from_array(np.array([[0, 2]], dtype=np.uint8))) == {"01": 1}
    assert dict(Counts.from_array(np.array([[7, 0]], dtype=np.uint8))) == {"10": 1}


def test_marginal():
    counts = Counts({"010": 3, "011": 5, "110": 2})
    marginal = counts.marginal([0, 1])
    assert marginal["01"] == 8 and marginal["11"] == 2
    reordered = counts.marginal([2, 0])
    assert reordered["00"] == 3 and reordered["10"] == 5 and reordered["01"] == 2
    with pytest.raises(DecodingError):
        counts.marginal([5])


def test_merge():
    merged = Counts({"0": 1}).merge(Counts({"0": 2, "1": 3}))
    assert merged["0"] == 3 and merged["1"] == 3
    with pytest.raises(DecodingError):
        Counts({"0": 1}).merge(Counts({"00": 1}))


def test_expectation():
    counts = Counts({"00": 500, "11": 500})
    parity = counts.expectation(lambda bits: 1.0 if bits.count("1") % 2 == 0 else -1.0)
    assert parity == 1.0
    with pytest.raises(DecodingError):
        Counts({}).expectation(lambda b: 1.0)


def test_mapping_protocol():
    counts = Counts({"0": 1, "1": 2})
    assert len(counts) == 2
    assert set(counts) == {"0", "1"}
    assert counts.to_dict() == {"0": 1, "1": 2}
