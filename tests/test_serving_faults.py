"""Tests for the serving layer's fault-tolerance policies.

Deadlines (cooperative timeout that frees the lane), :class:`RetryPolicy`
(transient-only, bounded, deterministically jittered), ``max_pending``
backpressure (synchronous :class:`QueueFullError`), ticket cancellation,
``close(drain=False)`` semantics, the ``as_completed`` timeout contract,
the process→thread degradation ladder, and the end-to-end jewel: a serving
job whose worker is killed mid-run recovers with counts bit-identical to a
fault-free submission.
"""

import threading
from concurrent.futures import BrokenExecutor, CancelledError

import pytest

from repro.core import ContextDescriptor, ExecPolicy, ServiceError, package, phase_register
from repro.core.errors import (
    DeadlineExceededError,
    QueueFullError,
    TransientExecutionError,
)
from repro.oplib import measurement, qft_operator
from repro.services import JobService, RetryPolicy, ServiceStats
from repro.services import serving as serving_module


def qft_bundle(name, *, width=4, seed=1, samples=256, options=None):
    reg = phase_register("p", width)
    return package(
        reg,
        [qft_operator(reg, do_swaps=True), measurement(reg)],
        ContextDescriptor(
            exec=ExecPolicy(
                engine="gate.aer_simulator",
                samples=samples,
                seed=seed,
                options=dict(options or {}),
            )
        ),
        name=name,
    )


@pytest.fixture
def gated_submit(monkeypatch):
    """Replace runtime_submit with a gate: jobs block until ``release`` is set."""
    real_submit = serving_module.runtime_submit
    started = threading.Event()
    release = threading.Event()

    def submit(bundle, **kwargs):
        started.set()
        assert release.wait(timeout=60)
        return real_submit(bundle, **kwargs)

    monkeypatch.setattr(serving_module, "runtime_submit", submit)
    yield started, release
    release.set()  # never leave an abandoned attempt blocked


# -- RetryPolicy --------------------------------------------------------------------

def test_retry_policy_validation():
    with pytest.raises(ServiceError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ServiceError, match="backoff_s"):
        RetryPolicy(backoff_s=-1.0)
    with pytest.raises(ServiceError, match="multiplier"):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ServiceError, match="jitter"):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ServiceError, match="seed"):
        RetryPolicy(seed=-1)
    with pytest.raises(ServiceError, match="RetryPolicy"):
        JobService(retry_policy="twice")


def test_retry_backoff_is_deterministic_and_exponential():
    policy = RetryPolicy(backoff_s=0.1, multiplier=2.0, jitter=0.2, seed=7)
    # Same (seed, job, attempt) triple -> same delay, across instances.
    again = RetryPolicy(backoff_s=0.1, multiplier=2.0, jitter=0.2, seed=7)
    for job_id in (1, 2, 17):
        for attempt in (0, 1, 2):
            delay = policy.delay_s(job_id, attempt)
            assert delay == again.delay_s(job_id, attempt)
            base = 0.1 * 2.0 ** attempt
            assert base * 0.8 <= delay <= base * 1.2
    # Jitter decorrelates jobs; zero jitter is exact.
    assert policy.delay_s(1, 0) != policy.delay_s(2, 0)
    exact = RetryPolicy(backoff_s=0.1, multiplier=3.0, jitter=0.0)
    assert exact.delay_s(5, 2) == pytest.approx(0.9)


def test_transient_failures_retry_to_success(monkeypatch):
    real_submit = serving_module.runtime_submit
    calls = []

    def flaky_submit(bundle, **kwargs):
        calls.append(bundle.name)
        if len(calls) < 3:
            raise TransientExecutionError("worker flaked")
        return real_submit(bundle, **kwargs)

    monkeypatch.setattr(serving_module, "runtime_submit", flaky_submit)
    policy = RetryPolicy(max_attempts=3, backoff_s=0.001, jitter=0.0)
    with JobService(retry_policy=policy) as service:
        result = service.submit(qft_bundle("flaky")).result(timeout=60)
        stats = service.stats()
    assert len(calls) == 3
    assert result.metadata["serving"]["attempts"] == 3
    assert stats["retries"] == 2
    assert stats["completed"] == 1
    assert stats["failed"] == 0


def test_transient_failures_exhaust_attempts(monkeypatch):
    def doomed_submit(bundle, **kwargs):
        raise TransientExecutionError("always flakes")

    monkeypatch.setattr(serving_module, "runtime_submit", doomed_submit)
    policy = RetryPolicy(max_attempts=2, backoff_s=0.001, jitter=0.0)
    with JobService(retry_policy=policy) as service:
        ticket = service.submit(qft_bundle("doomed"))
        assert isinstance(ticket.exception(timeout=60), TransientExecutionError)
        stats = service.stats()
    assert stats["retries"] == 1
    assert stats["failed"] == 1


def test_permanent_failures_never_retry(monkeypatch):
    calls = []

    def broken_submit(bundle, **kwargs):
        calls.append(bundle.name)
        raise ValueError("bad amplitude")

    monkeypatch.setattr(serving_module, "runtime_submit", broken_submit)
    policy = RetryPolicy(max_attempts=5, backoff_s=0.001)
    with JobService(retry_policy=policy) as service:
        ticket = service.submit(qft_bundle("permanent"))
        assert isinstance(ticket.exception(timeout=60), ValueError)
        stats = service.stats()
    assert calls == ["permanent"]  # exactly one attempt
    assert stats["retries"] == 0
    assert stats["failed"] == 1


# -- deadlines ----------------------------------------------------------------------

def test_deadline_kills_overrunning_job(gated_submit):
    started, release = gated_submit
    # Even with retries configured, a deadline kill is permanent.
    policy = RetryPolicy(max_attempts=3, backoff_s=0.001)
    with JobService(retry_policy=policy, default_deadline_s=0.1) as service:
        ticket = service.submit(qft_bundle("overrun"))
        exc = ticket.exception(timeout=60)
        assert isinstance(exc, DeadlineExceededError)
        release.set()  # unblock the abandoned attempt
        stats = service.stats()
    assert stats["deadline_kills"] == 1
    assert stats["failed"] == 1
    assert stats["retries"] == 0


def test_deadline_from_bundle_options_and_fast_jobs_pass():
    bundle = qft_bundle("quick", options={"deadline_s": 60})
    with JobService() as service:
        result = service.submit(bundle).result(timeout=60)
    assert result.counts.shots == 256


def test_invalid_deadline_rejected_at_admission():
    with JobService() as service:
        with pytest.raises(ServiceError, match="deadline_s"):
            service.submit(qft_bundle("bad", options={"deadline_s": -1}))
        assert service.stats()["submitted"] == 0
    with pytest.raises(ServiceError, match="default_deadline_s"):
        JobService(default_deadline_s=0)


# -- backpressure -------------------------------------------------------------------

def test_max_pending_bounds_admission(gated_submit):
    started, release = gated_submit
    with JobService(max_pending=2, coalesce=False) as service:
        service.submit(qft_bundle("a"))
        service.submit(qft_bundle("b"))
        with pytest.raises(QueueFullError, match="max_pending=2"):
            service.submit(qft_bundle("c"))
        stats = service.stats()
        assert stats["rejected"] == 1
        assert stats["submitted"] == 2
        release.set()
        service.drain()
        # Settled jobs free their slots: admission works again.
        assert service.submit(qft_bundle("c")).result(timeout=60) is not None
    with pytest.raises(ServiceError, match="max_pending"):
        JobService(max_pending=0)


def test_submit_many_is_all_or_nothing_against_the_bound(gated_submit):
    started, release = gated_submit
    with JobService(max_pending=3, coalesce=False) as service:
        service.submit(qft_bundle("live"))
        bundles = [qft_bundle(f"batch{i}") for i in range(3)]
        with pytest.raises(QueueFullError, match="batch of 3"):
            service.submit_many(bundles)
        stats = service.stats()
        assert stats["submitted"] == 1  # nothing from the batch was enqueued
        assert stats["rejected"] == 3
        release.set()


# -- cancellation and close(drain=False) --------------------------------------------

def test_cancel_pending_job(gated_submit):
    started, release = gated_submit
    with JobService(lanes=1, coalesce=False) as service:
        running = service.submit(qft_bundle("running"))
        assert started.wait(timeout=60)
        queued = service.submit(qft_bundle("queued"))
        assert queued.cancel() is True
        assert queued.cancel() is True  # idempotent, still counted once
        assert running.cancel() is False  # already running: cooperative only
        with pytest.raises(CancelledError):
            queued.result(timeout=60)
        release.set()
        assert running.result(timeout=60) is not None
        # The cancelled ticket still appears in the completion stream.
        seen = {ticket.name for ticket in service.as_completed(timeout=60)}
        assert seen == {"running", "queued"}
        stats = service.stats()
    assert stats["cancelled"] == 1
    assert stats["completed"] == 1


def test_close_without_drain_cancels_outstanding(gated_submit):
    started, release = gated_submit
    service = JobService(lanes=1, coalesce=False)
    running = service.submit(qft_bundle("running"))
    assert started.wait(timeout=60)
    queued = [service.submit(qft_bundle(f"q{i}")) for i in range(2)]
    closer = threading.Thread(target=lambda: service.close(drain=False))
    closer.start()
    # Queued tickets fail fast with CancelledError while the running
    # attempt is allowed to finish.
    for ticket in queued:
        with pytest.raises(CancelledError):
            ticket.result(timeout=60)
    release.set()
    closer.join(timeout=60)
    assert not closer.is_alive()
    assert running.result(timeout=60) is not None
    stats = service.stats()
    assert stats["cancelled"] == 2
    assert stats["completed"] == 1
    # drain() treats cancelled tickets as settled and never re-raises.
    assert len(service.drain()) == 3


# -- as_completed timeout -----------------------------------------------------------

def test_as_completed_timeout_preserves_cursor(gated_submit):
    started, release = gated_submit
    with JobService() as service:
        service.submit(qft_bundle("slowpoke"))
        assert started.wait(timeout=60)
        with pytest.raises(TimeoutError, match="cursor is preserved"):
            list(service.as_completed(timeout=0.05))
        release.set()
        # The cursor survived the timeout: resuming yields the job once.
        seen = [ticket.name for ticket in service.as_completed(timeout=60)]
    assert seen == ["slowpoke"]


# -- degradation ladder -------------------------------------------------------------

def test_pool_breakage_degrades_to_thread_executor(monkeypatch):
    real_submit = serving_module.runtime_submit
    executors = []

    def crashing_submit(bundle, **kwargs):
        executors.append(bundle.context.exec.options.get("trajectory_executor"))
        if len(executors) == 1:
            raise BrokenExecutor("process pool died")
        return real_submit(bundle, **kwargs)

    monkeypatch.setattr(serving_module, "runtime_submit", crashing_submit)
    policy = RetryPolicy(max_attempts=3, backoff_s=0.001)
    with JobService(
        retry_policy=policy,
        fallback_after=1,
        exec_options={"trajectory_executor": "process"},
    ) as service:
        result = service.submit(qft_bundle("degraded")).result(timeout=60)
        stats = service.stats()
        typed = service.service_stats()
    # First attempt ran on the requested process executor and broke the
    # pool; the retry was forced onto the thread executor.
    assert executors == ["process", "thread"]
    assert result.metadata["serving"]["executor_fallback"] is True
    assert stats["pool_breakages"] == 1
    assert stats["executor_fallback"] == 1
    assert isinstance(typed, ServiceStats)
    assert typed.executor_fallback is True
    assert typed.retries == 1


def test_recovered_crashes_count_toward_stats(monkeypatch):
    real_submit = serving_module.runtime_submit

    def recovered_submit(bundle, **kwargs):
        result = real_submit(bundle, **kwargs)
        result.metadata["executor_recovery"] = {
            "pool_rebuilds": 2,
            "groups_redispatched": 3,
        }
        return result

    monkeypatch.setattr(serving_module, "runtime_submit", recovered_submit)
    with JobService(fallback_after=2) as service:
        result = service.submit(qft_bundle("survivor")).result(timeout=60)
        stats = service.stats()
    assert result.metadata["serving"]["attempts"] == 1
    assert stats["crashes_recovered"] == 2
    assert stats["pool_breakages"] == 2
    assert stats["executor_fallback"] == 1  # budget spent by recovered crashes


# -- end to end: injected crash through the serving stack ---------------------------

def test_serving_job_with_killed_worker_matches_fault_free():
    from repro.simulators.gate.procpool import shutdown_worker_pool

    process_options = {
        "trajectory_executor": "process",
        "noise": {"oneq_error": 1e-3},
        "max_batch_memory": 128 * 32,
    }
    try:
        with JobService() as service:
            clean = service.submit(
                qft_bundle("clean", width=3, options=process_options)
            ).result(timeout=120)
            crashed = service.submit(
                qft_bundle(
                    "crashed",
                    width=3,
                    options={
                        **process_options,
                        # JSON-safe spec, exactly as a remote client would send.
                        "fault_plan": {"events": [{"kind": "kill", "chunk_id": 0}]},
                    },
                )
            ).result(timeout=120)
            stats = service.stats()
        assert crashed.metadata["executor_recovery"]["pool_rebuilds"] == 1
        assert dict(crashed.counts) == dict(clean.counts)
        assert stats["crashes_recovered"] == 1
        assert stats["completed"] == 2
        assert stats["failed"] == 0
    finally:
        shutdown_worker_pool()
