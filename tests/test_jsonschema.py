"""Tests for the embedded JSON Schema validator."""

import pytest

from repro.core.errors import SchemaValidationError
from repro.core.jsonschema import JSONSchemaValidator, is_valid, iter_errors, validate


def test_type_checks():
    assert is_valid(3, {"type": "integer"})
    assert is_valid(3.5, {"type": "number"})
    assert not is_valid(3.5, {"type": "integer"})
    assert not is_valid(True, {"type": "integer"})  # bools are not integers here
    assert is_valid("x", {"type": "string"})
    assert is_valid(None, {"type": "null"})
    assert is_valid([1, 2], {"type": "array"})
    assert is_valid({"a": 1}, {"type": "object"})


def test_union_types():
    schema = {"type": ["string", "integer"]}
    assert is_valid("x", schema)
    assert is_valid(4, schema)
    assert not is_valid(4.5, schema)


def test_required_and_additional_properties():
    schema = {
        "type": "object",
        "properties": {"a": {"type": "integer"}},
        "required": ["a"],
        "additionalProperties": False,
    }
    validate({"a": 1}, schema)
    with pytest.raises(SchemaValidationError):
        validate({}, schema)
    with pytest.raises(SchemaValidationError):
        validate({"a": 1, "b": 2}, schema)


def test_nested_property_error_path():
    schema = {
        "type": "object",
        "properties": {"exec": {"type": "object", "properties": {"samples": {"type": "integer"}}}},
    }
    errors = list(iter_errors({"exec": {"samples": "lots"}}, schema))
    assert errors and "$.exec.samples" in errors[0].path


def test_enum_and_const():
    assert is_valid("LSB_0", {"enum": ["LSB_0", "MSB_0"]})
    assert not is_valid("MIDDLE", {"enum": ["LSB_0", "MSB_0"]})
    assert is_valid(7, {"const": 7})
    assert not is_valid(8, {"const": 7})


def test_array_items_and_bounds():
    schema = {"type": "array", "items": {"type": "integer"}, "minItems": 1, "maxItems": 3}
    validate([1, 2], schema)
    with pytest.raises(SchemaValidationError):
        validate([], schema)
    with pytest.raises(SchemaValidationError):
        validate([1, 2, 3, 4], schema)
    with pytest.raises(SchemaValidationError):
        validate([1, "x"], schema)


def test_number_bounds():
    schema = {"type": "number", "minimum": 0, "exclusiveMaximum": 1}
    validate(0, schema)
    validate(0.99, schema)
    with pytest.raises(SchemaValidationError):
        validate(1, schema)
    with pytest.raises(SchemaValidationError):
        validate(-0.1, schema)


def test_string_constraints():
    schema = {"type": "string", "minLength": 2, "pattern": r"^\d+/\d+$"}
    validate("1/1024", schema)
    with pytest.raises(SchemaValidationError):
        validate("x", schema)
    with pytest.raises(SchemaValidationError):
        validate("abc", schema)


def test_anyof_oneof_not():
    any_schema = {"anyOf": [{"type": "string"}, {"type": "integer"}]}
    assert is_valid("x", any_schema)
    assert not is_valid(1.5, any_schema)
    one_schema = {"oneOf": [{"type": "number"}, {"type": "integer"}]}
    assert is_valid(1.5, one_schema)  # matches only "number"
    assert not is_valid(2, one_schema)  # matches both -> fails oneOf
    not_schema = {"not": {"type": "string"}}
    assert is_valid(3, not_schema)
    assert not is_valid("x", not_schema)


def test_local_ref_resolution():
    schema = {
        "definitions": {"positive": {"type": "integer", "minimum": 1}},
        "type": "object",
        "properties": {"width": {"$ref": "#/definitions/positive"}},
    }
    validator = JSONSchemaValidator(schema)
    assert validator.is_valid({"width": 3})
    assert not validator.is_valid({"width": 0})


def test_false_schema_rejects_everything():
    schema = {"type": "object", "properties": {"x": False}}
    assert is_valid({}, schema)  # absent property is fine
    assert not is_valid({"x": 1}, schema)
    errors = list(iter_errors({"x": 1}, schema))
    assert errors and "forbids" in errors[0].message
