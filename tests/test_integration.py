"""Integration tests: the paper's portability claims, end to end."""

import pytest

from repro.core import ContextDescriptor, ExecPolicy
from repro.problems import MaxCutProblem
from repro.backends import submit
from repro.workflows import (
    build_anneal_bundle,
    build_qaoa_bundle,
    default_anneal_context,
    default_gate_context,
    solve_maxcut,
)


def test_poc_same_typed_problem_on_both_backends(cycle4):
    """Section 5: same QDT, different operator formulation + context, same answer."""
    gate = solve_maxcut(
        cycle4,
        formulation="qaoa",
        context=default_gate_context(cycle4, samples=2048, seed=21),
    )
    anneal = solve_maxcut(
        cycle4,
        formulation="ising",
        context=default_anneal_context(num_reads=500, num_sweeps=300, seed=21),
    )
    # Both runs produce the optimal cut assignments 1010 and 0101 (cut = 4).
    assert set(gate.best_assignments) == {"0101", "1010"}
    assert set(anneal.best_assignments) == {"0101", "1010"}
    assert gate.best_cut == anneal.best_cut == 4.0
    # The gate path's expected cut sits in the paper's reported window.
    assert 2.8 <= gate.expected_cut <= 3.3
    # Decoding went through the same explicit schema on both paths.
    assert gate.result.decoded().single().most_likely().value in ((0, 1, 0, 1), (1, 0, 1, 0))
    assert anneal.result.decoded().single().most_likely().value in ((0, 1, 0, 1), (1, 0, 1, 0))


def test_exact_backend_agrees_with_brute_force(cycle4):
    bundle = build_anneal_bundle(cycle4).with_context(
        ContextDescriptor(exec=ExecPolicy(engine="exact.brute_force", samples=1))
    )
    result = submit(bundle)
    optimal_cut, _ = cycle4.brute_force()
    assert cycle4.cut_from_energy(result.metadata["ground_energy"]) == optimal_cut


def test_portability_on_a_different_instance():
    """The same workflow works unchanged on a non-trivial weighted instance."""
    problem = MaxCutProblem.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)],
        weights=[1.0, 2.0, 1.0, 2.0, 1.0, 1.5],
    )
    anneal = solve_maxcut(
        problem,
        formulation="ising",
        context=default_anneal_context(num_reads=400, num_sweeps=500, seed=5),
    )
    optimal, _ = problem.brute_force()
    assert anneal.best_cut == pytest.approx(optimal)
    gate = solve_maxcut(
        problem,
        formulation="qaoa",
        context=default_gate_context(problem, samples=2048, seed=5, constrain_target=False),
        gammas=[-0.35],
        betas=[0.35],
    )
    # QAOA at p=1 on a small weighted instance should comfortably beat random.
    random_cut = problem.total_weight / 2.0
    assert gate.expected_cut > random_cut


def test_intent_artifacts_identical_across_contexts(cycle4):
    """Re-targeting changes only the context block of job.json."""
    bundle = build_anneal_bundle(cycle4)
    retargeted = bundle.with_context(
        ContextDescriptor(exec=ExecPolicy(engine="exact.brute_force", samples=1))
    )
    original = bundle.to_dict()
    changed = retargeted.to_dict()
    assert original["qdts"] == changed["qdts"]
    assert original["operators"] == changed["operators"]
    assert original["context"] != changed["context"]
    # and both execute successfully
    assert submit(bundle).counts is not None
    assert submit(retargeted).counts is not None
