"""Tests for the serving layer's merged (batch-axis) group execution.

The serving contract on top of :meth:`StatevectorSimulator.run_merged`: a
coalesced group of merge-eligible jobs executes as **one** backend call, each
ticket gets back exactly the counts a standalone submission would produce,
and the fast path degrades gracefully — per-job opt-out, cancelled members,
a member's deadline expiry, and whole-group failures all isolate to the
affected ticket while the rest of the group still completes (merged when
``>= 2`` members remain live, solo otherwise).  Also covered: the cached
lowering artifact means no job is lowered again at execution time.
"""

import threading
from concurrent.futures import CancelledError

import pytest

from repro.core import ContextDescriptor, ExecPolicy, package, phase_register
from repro.core.errors import DeadlineExceededError
from repro.oplib import measurement, qft_operator
from repro.services import JobService
from repro.services import serving as serving_module


def qft_bundle(name, *, width=4, seed=1, samples=256, options=None):
    reg = phase_register("p", width)
    return package(
        reg,
        [qft_operator(reg, do_swaps=True), measurement(reg)],
        ContextDescriptor(
            exec=ExecPolicy(
                engine="gate.aer_simulator",
                samples=samples,
                seed=seed,
                options=dict(options or {}),
            )
        ),
        name=name,
    )


NOISY = {"noise": {"oneq_error": 0.01, "twoq_error": 0.02}, "max_batch_memory": 16 * 1024}


def group(prefix, size, *, options=None):
    """A merge-eligible group: same structure, per-job samples and seeds."""
    return [
        qft_bundle(
            f"{prefix}{i}", seed=i + 1, samples=128 + 64 * i, options=options
        )
        for i in range(size)
    ]


def counts_by_name(service, bundles):
    tickets = service.submit_many(bundles)
    return {t.name: dict(t.result(timeout=120).counts) for t in tickets}, tickets


# -- bit-identity through the service -----------------------------------------------

@pytest.mark.parametrize("options", [None, NOISY], ids=["exact", "trajectories"])
def test_merged_service_counts_match_back_to_back(options):
    bundles = group("m", 4, options=options)
    with JobService(lanes=1) as merged_service:
        merged, tickets = counts_by_name(merged_service, bundles)
        merged_stats = merged_service.stats()
    with JobService(lanes=1, coalesce_merge=False) as solo_service:
        solo, _ = counts_by_name(solo_service, group("m", 4, options=options))
        solo_stats = solo_service.stats()
    assert merged == solo
    assert merged_stats["merged_groups"] == 1
    assert merged_stats["merged_jobs"] == 4
    assert solo_stats["merged_groups"] == 0
    assert solo_stats["merged_jobs"] == 0
    for ticket in tickets:
        serving = ticket.result().metadata["serving"]
        assert serving["merged"] is True
        assert serving["group_size"] == 4


def test_per_job_opt_out_runs_solo_next_to_the_merge():
    bundles = group("o", 3)
    bundles.append(
        qft_bundle("o3", seed=4, samples=320, options={"coalesce_merge": False})
    )
    with JobService(lanes=1) as service:
        results, tickets = counts_by_name(service, bundles)
        stats = service.stats()
    assert stats["merged_groups"] == 1
    assert stats["merged_jobs"] == 3
    assert stats["completed"] == 4
    by_name = {t.name: t for t in tickets}
    assert by_name["o3"].result().metadata["serving"]["merged"] is False
    assert by_name["o0"].result().metadata["serving"]["merged"] is True
    # The opted-out job's counts match its own standalone submission.
    with JobService(lanes=1, coalesce=False) as solo_service:
        alone = solo_service.submit(
            qft_bundle("o3", seed=4, samples=320)
        ).result(timeout=120)
    assert results["o3"] == dict(alone.counts)


def test_lowering_happens_once_per_job():
    # The coalescing key already lowered every bundle; execution must reuse
    # that cached artifact instead of lowering a second time.
    from repro.backends.gate_backend import GateBackend

    calls = []
    real_build = GateBackend.build_circuit

    def counting_build(self, bundle):
        calls.append(bundle.name)
        return real_build(self, bundle)

    bundles = group("lo", 3)
    with pytest.MonkeyPatch.context() as patch:
        patch.setattr(GateBackend, "build_circuit", counting_build)
        with JobService(lanes=1) as service:
            tickets = service.submit_many(bundles)
            keyed = list(calls)
            for ticket in tickets:
                ticket.result(timeout=120)
            executed = list(calls)
    assert len(keyed) == 3  # once per job, at admission
    assert executed == keyed  # and never again during execution


# -- failure isolation --------------------------------------------------------------

def test_cancelled_member_does_not_poison_the_merge(monkeypatch):
    real_submit = serving_module.runtime_submit
    started = threading.Event()
    release = threading.Event()

    def gated_submit(bundle, **kwargs):
        started.set()
        assert release.wait(timeout=60)
        return real_submit(bundle, **kwargs)

    monkeypatch.setattr(serving_module, "runtime_submit", gated_submit)
    with JobService(lanes=1) as service:
        # A structurally different blocker pins the single lane so the
        # group is still pending when one member is cancelled.
        blocker = service.submit(qft_bundle("blocker", width=3))
        assert started.wait(timeout=60)
        tickets = service.submit_many(group("c", 3))
        assert tickets[1].cancel() is True
        release.set()
        assert blocker.result(timeout=120) is not None
        with pytest.raises(CancelledError):
            tickets[1].result(timeout=120)
        survivors = [tickets[0], tickets[2]]
        for ticket in survivors:
            serving = ticket.result(timeout=120).metadata["serving"]
            assert serving["merged"] is True  # two live members still merge
        stats = service.stats()
    assert stats["cancelled"] == 1
    assert stats["merged_groups"] == 1
    assert stats["merged_jobs"] == 2
    assert stats["completed"] == 3  # blocker + two survivors


def test_deadline_member_fails_alone_survivors_rerun_solo(monkeypatch):
    release = threading.Event()

    def stuck_merged(bundles, **kwargs):
        assert release.wait(timeout=60)
        raise AssertionError("the abandoned merged attempt must be discarded")

    monkeypatch.setattr(serving_module, "runtime_submit_merged", stuck_merged)
    bundles = group("d", 3)
    bundles[1] = qft_bundle(
        "d1", seed=2, samples=192, options={"deadline_s": 0.15}
    )
    try:
        with JobService(lanes=1) as service:
            tickets = service.submit_many(bundles)
            # The member with the spent deadline fails permanently...
            assert isinstance(
                tickets[1].exception(timeout=120), DeadlineExceededError
            )
            # ...while the deadline-free members re-run solo and succeed.
            for ticket in (tickets[0], tickets[2]):
                serving = ticket.result(timeout=120).metadata["serving"]
                assert serving["merged"] is False
            stats = service.stats()
    finally:
        release.set()
    assert stats["deadline_kills"] == 1
    assert stats["failed"] == 1
    assert stats["completed"] == 2
    assert stats["merged_jobs"] == 0


def test_merged_failure_falls_back_to_solo_for_every_member(monkeypatch):
    attempts = []

    def exploding_merged(bundles, **kwargs):
        attempts.append(len(bundles))
        raise RuntimeError("merged path fell over")

    monkeypatch.setattr(serving_module, "runtime_submit_merged", exploding_merged)
    bundles = group("f", 3)
    with JobService(lanes=1) as service:
        merged, tickets = counts_by_name(service, bundles)
        stats = service.stats()
    assert attempts == [3]  # one merged attempt for the whole subgroup
    assert stats["completed"] == 3
    assert stats["failed"] == 0
    assert stats["merged_groups"] == 0  # nothing completed via the fast path
    for ticket in tickets:
        assert ticket.result().metadata["serving"]["merged"] is False
    # The solo fallback still produces standalone-identical counts.
    with JobService(lanes=1, coalesce_merge=False) as solo_service:
        solo, _ = counts_by_name(solo_service, group("f", 3))
    assert merged == solo
