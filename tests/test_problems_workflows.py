"""Tests for the problem library and the end-to-end workflows (the PoC)."""

import pytest

from repro.core import DescriptorError
from repro.problems import MaxCutProblem, cycle_graph, grid_graph, random_graph, weighted_from_edges
from repro.workflows import (
    build_anneal_bundle,
    build_qaoa_bundle,
    default_anneal_context,
    default_gate_context,
    maxcut_register,
    read_artifacts,
    ring_coupling_map,
    run_artifacts,
    solve_maxcut,
    write_artifacts,
)


# -- graphs & Max-Cut ------------------------------------------------------------------

def test_graph_generators():
    assert cycle_graph(4).number_of_edges() == 4
    assert grid_graph(2, 3).number_of_nodes() == 6
    g = random_graph(6, 0.5, seed=1, weighted=True)
    assert all("weight" in d for _, _, d in g.edges(data=True))
    w = weighted_from_edges([(0, 1, 2.5)])
    assert w[0][1]["weight"] == 2.5
    with pytest.raises(DescriptorError):
        cycle_graph(2)
    with pytest.raises(DescriptorError):
        random_graph(4, 1.5)


def test_maxcut_cut_values(cycle4):
    assert cycle4.total_weight == 4.0
    assert cycle4.cut_value("0101") == 4.0
    assert cycle4.cut_value("0011") == 2.0
    assert cycle4.cut_value("0000") == 0.0
    assert cycle4.cut_value([1, -1, 1, -1]) == 4.0  # spin labels accepted
    with pytest.raises(DescriptorError):
        cycle4.cut_value("01")
    with pytest.raises(DescriptorError):
        cycle4.cut_value([0, 1, 2, 3])


def test_maxcut_energy_cut_conversion(cycle4):
    assert cycle4.cut_from_energy(-4.0) == 4.0
    assert cycle4.energy_from_cut(4.0) == -4.0
    assert cycle4.cut_from_energy(cycle4.energy_from_cut(2.5)) == 2.5


def test_maxcut_brute_force(cycle4):
    best, assignments = cycle4.brute_force()
    assert best == 4.0
    labels = {"".join(str(b) for b in a) for a in assignments}
    assert labels == {"0101", "1010"}
    assert cycle4.approximation_ratio(3.0) == pytest.approx(0.75)


def test_maxcut_baselines(cycle4):
    greedy_value, greedy_labels = cycle4.greedy(seed=0, restarts=3)
    assert greedy_value == 4.0
    spectral_value, _ = cycle4.spectral()
    assert spectral_value >= 2.0
    random_value, _ = cycle4.random_assignment(seed=0)
    assert 0.0 <= random_value <= 4.0


def test_maxcut_requires_contiguous_nodes():
    import networkx as nx

    graph = nx.Graph()
    graph.add_edge(1, 5)
    with pytest.raises(DescriptorError):
        MaxCutProblem(graph)


def test_expected_cut_from_distribution(cycle4):
    dist = {"0101": 0.5, "0000": 0.5}
    assert cycle4.expected_cut_from_distribution(dist) == 2.0
    with pytest.raises(DescriptorError):
        cycle4.expected_cut_from_distribution({})


# -- workflows -------------------------------------------------------------------------------

def test_maxcut_register_matches_paper(cycle4):
    reg = maxcut_register(cycle4)
    doc = reg.to_dict()
    assert doc["id"] == "ising_vars" and doc["name"] == "s"
    assert doc["width"] == 4
    assert doc["encoding_kind"] == "ISING_SPIN"
    assert doc["bit_order"] == "LSB_0"
    assert doc["measurement_semantics"] == "AS_BOOL"
    assert ring_coupling_map(4) == [(0, 1), (1, 2), (2, 3), (3, 0)]


def test_bundles_share_the_same_register(cycle4):
    gate_bundle = build_qaoa_bundle(cycle4)
    anneal_bundle = build_anneal_bundle(cycle4)
    assert gate_bundle.qdts["ising_vars"].to_dict() == anneal_bundle.qdts["ising_vars"].to_dict()
    assert gate_bundle.engine.startswith("gate.")
    assert anneal_bundle.engine.startswith("anneal.")


def test_solve_maxcut_gate_path(cycle4):
    ctx = default_gate_context(cycle4, samples=2048, seed=11, constrain_target=False)
    solution = solve_maxcut(cycle4, formulation="qaoa", context=ctx)
    assert solution.found_optimum
    assert set(solution.best_assignments) == {"0101", "1010"}
    # Paper: expected cut ~ 3.0-3.2 for the basic settings.
    assert 2.8 <= solution.expected_cut <= 3.3
    assert 0.7 <= solution.approximation_ratio <= 0.85


def test_solve_maxcut_anneal_path(cycle4):
    ctx = default_anneal_context(num_reads=400, num_sweeps=300, seed=11)
    solution = solve_maxcut(cycle4, formulation="ising", context=ctx)
    assert solution.found_optimum
    assert set(solution.best_assignments) == {"0101", "1010"}
    assert solution.expected_cut > 3.5


def test_solve_maxcut_unknown_formulation(cycle4):
    with pytest.raises(ValueError):
        solve_maxcut(cycle4, formulation="photonic")


def test_artifact_directory_round_trip(cycle4, tmp_path, gate_context):
    bundle = build_qaoa_bundle(cycle4, context=gate_context)
    manifest = write_artifacts(bundle, tmp_path / "poc")
    assert len(manifest["qdt"]) == 1
    assert len(manifest["qop"]) == len(bundle.operators)
    assert manifest["ctx"] == ["CTX.json"]
    assert manifest["job"] == ["job.json"]
    rebuilt = read_artifacts(tmp_path / "poc")
    assert rebuilt.digest() == bundle.digest()
    result = run_artifacts(tmp_path / "poc")
    assert result.counts.shots == gate_context.samples


def test_artifacts_without_job_json(cycle4, tmp_path, gate_context):
    bundle = build_qaoa_bundle(cycle4, context=gate_context)
    write_artifacts(bundle, tmp_path / "poc")
    (tmp_path / "poc" / "job.json").unlink()
    rebuilt = read_artifacts(tmp_path / "poc")
    assert len(rebuilt.operators) == len(bundle.operators)
    assert rebuilt.context is not None


def test_qaoa_optimizer_improves_over_bad_angles(cycle4):
    from repro.workflows import evaluate_angles, optimize_qaoa

    ctx = default_gate_context(cycle4, samples=1024, seed=3, constrain_target=False,
                               optimization_level=1)
    bad = evaluate_angles(cycle4, [0.01], [0.01], context=ctx)
    result = optimize_qaoa(cycle4, reps=1, context=ctx, grid_resolution=5, refine=False)
    assert result.best_expected_cut > bad
    assert result.best_expected_cut > 2.4
    assert result.evaluations == len(result.history) > 0
    assert result.optimal_cut == 4.0
    assert 0 < result.approximation_ratio <= 1.0


def test_artifact_qop_order_is_numeric_not_lexicographic(cycle4, tmp_path, gate_context):
    # Regression: read_artifacts sorted QOP files lexicographically, so an
    # unpadded index (legacy layout) or one past the padding width reordered
    # operators (QOP_10_* before QOP_2_*) and broke the bundle digest.
    bundle = build_qaoa_bundle(cycle4, gammas=[-0.4] * 5, betas=[0.4] * 5,
                               context=gate_context)
    assert len(bundle.operators) > 10
    write_artifacts(bundle, tmp_path / "poc")
    for path in (tmp_path / "poc").glob("QOP_*.json"):
        index, name = path.name[len("QOP_"):].split("_", 1)
        path.rename(path.with_name(f"QOP_{int(index)}_{name}"))
    rebuilt = read_artifacts(tmp_path / "poc")
    assert [op.name for op in rebuilt.operators] == [op.name for op in bundle.operators]
    assert rebuilt.digest() == bundle.digest()


def test_artifact_rewrite_removes_stale_files(cycle4, tmp_path, gate_context):
    # Regression: re-exporting a smaller bundle into the same directory left
    # the old run's extra QOP files behind, and read_artifacts merged them
    # into the rebuilt bundle.
    big = build_qaoa_bundle(cycle4, gammas=[-0.4] * 3, betas=[0.4] * 3,
                            context=gate_context)
    small = build_qaoa_bundle(cycle4, context=gate_context)
    assert len(big.operators) > len(small.operators)
    write_artifacts(big, tmp_path / "poc")
    manifest = write_artifacts(small, tmp_path / "poc")
    on_disk = sorted(p.name for p in (tmp_path / "poc").glob("Q*_*.json"))
    assert on_disk == sorted(manifest["qdt"] + manifest["qop"])
    rebuilt = read_artifacts(tmp_path / "poc")
    assert len(rebuilt.operators) == len(small.operators)
    assert rebuilt.digest() == small.digest()
