"""Tests for the top-level public API surface."""

import repro


def test_version_and_exports_exist():
    assert repro.__version__ == "1.0.0"
    for name in repro.__all__:
        assert hasattr(repro, name), f"missing export {name}"


def test_register_constructors_via_top_level():
    reg = repro.phase_register("p", 4)
    assert isinstance(reg, repro.QuantumDataType)
    assert repro.ising_register("s", 3).width == 3
    assert repro.integer_register("n", 2).encoding_kind == repro.EncodingKind.INT_REGISTER
    assert repro.boolean_register("b", 2).measurement_semantics == repro.MeasurementSemantics.AS_BOOL


def test_engines_listed_via_top_level():
    engines = repro.list_engines()
    assert any(e.startswith("gate.") for e in engines)
    assert any(e.startswith("anneal.") for e in engines)
    assert any(e.startswith("exact.") for e in engines)


def test_custom_backend_registration_round_trip():
    from repro.backends import Backend, ExecutionResult

    class EchoBackend(Backend):
        name = "echo"
        engines = ("echo.test_backend",)
        supported_rep_kinds = ("ISING_PROBLEM", "MEASUREMENT")

        def run(self, bundle):
            return ExecutionResult(backend_name=self.name, engine="echo.test_backend",
                                   bundle_digest=bundle.digest(), _bundle=bundle)

    repro.register_backend(EchoBackend, replace=True)
    assert "echo.test_backend" in repro.list_engines()
    backend = repro.get_backend("echo.test_backend")
    assert backend.supports("ISING_PROBLEM")
    assert not backend.supports("QFT_TEMPLATE")


def test_quickstart_snippet_from_readme():
    problem = repro.MaxCutProblem.cycle(4)
    gate = repro.solve_maxcut(problem, formulation="qaoa")
    assert gate.best_cut == 4.0
