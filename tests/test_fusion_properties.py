"""Property-based tests for the fusion compiler, judged by the density oracle.

Three families of properties over seeded random circuits:

* **fused == unfused unitaries** — ``circuit_unitary(fuse=True)`` equals the
  instruction-by-instruction reference for arbitrary unitary circuits;
* **noise pushing is exact** — evolving the density matrix through the
  compiled program (fused blocks + conjugated-through noise events) produces
  the *same mixed state* as applying each gate and its in-place depolarizing
  channel one instruction at a time;
* **trace preservation** — every compiled noise event is a CPTP map (trace
  preserved on random mixed states), and full noisy evolutions keep
  ``tr(rho) = 1``.
"""

import numpy as np
import pytest

from repro.simulators.gate import (
    Circuit,
    DensityMatrix,
    NoiseModel,
    circuit_unitary,
)
from repro.simulators.gate.density import _apply_noise_event, _apply_unitary
from repro.simulators.gate.fusion import GateStep, compile_trajectory_program

from engine_testlib import random_unitary_circuit


def unfused_noisy_density(circuit, noise):
    """The executable specification: per-instruction gates + in-place channels.

    Mirrors the reference trajectory engine's channel placement exactly —
    after every gate, each touched qubit independently passes through a
    depolarizing channel at that arity's rate — but in closed form.
    """
    rho = DensityMatrix(circuit.num_qubits)
    for inst in circuit.instructions:
        if inst.name == "barrier":
            continue
        rho.apply_gate(inst.name, inst.qubits, inst.params)
        rate = noise.oneq_error if inst.num_qubits == 1 else noise.twoq_error
        if rate > 0:
            for qubit in inst.qubits:
                rho.depolarize(qubit, rate)
    return rho


def fused_noisy_density(circuit, noise):
    """Evolution through the compiled program: fused blocks + pushed events."""
    program = compile_trajectory_program(circuit, noise)
    rho = DensityMatrix(circuit.num_qubits)
    n = circuit.num_qubits
    for step in program.steps:
        assert isinstance(step, GateStep)  # unitary circuits compile to GateStep only
        _apply_unitary(rho._tensor, step.plan, step.qubits, n)
        for event in step.noise:
            rho._tensor = _apply_noise_event(rho._tensor, event, n)
    return rho


@pytest.mark.parametrize("num_qubits", [1, 2, 3, 4])
@pytest.mark.parametrize("circuit_seed", [0, 1, 2, 3])
def test_fused_and_unfused_unitaries_agree(num_qubits, circuit_seed):
    rng = np.random.default_rng(100 * num_qubits + circuit_seed)
    circuit = random_unitary_circuit(rng, num_qubits, 8 * num_qubits)
    fused = circuit_unitary(circuit, fuse=True)
    unfused = circuit_unitary(circuit, fuse=False)
    assert np.allclose(fused, unfused, atol=1e-12)


@pytest.mark.parametrize("num_qubits", [1, 2, 3])
@pytest.mark.parametrize("circuit_seed", [0, 1, 2])
def test_noise_pushing_is_exact_under_density_oracle(num_qubits, circuit_seed):
    # The fusion compiler conjugates error opportunities through fused blocks
    # (P -> R P R†).  That rewrite must not change the channel: the fused and
    # unfused evolutions must produce the same density matrix, entry by entry.
    rng = np.random.default_rng(7000 + 100 * num_qubits + circuit_seed)
    circuit = random_unitary_circuit(rng, num_qubits, 6 * num_qubits)
    noise = NoiseModel(oneq_error=0.08, twoq_error=0.12)
    fused = fused_noisy_density(circuit, noise)
    unfused = unfused_noisy_density(circuit, noise)
    assert np.allclose(fused.matrix, unfused.matrix, atol=1e-12)


def random_density_tensor(rng, num_qubits):
    """A random full-rank mixed state as a raw ``(2,)*2n`` tensor."""
    dim = 1 << num_qubits
    raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    positive = raw @ raw.conj().T + 1e-3 * np.eye(dim)
    positive /= np.trace(positive).real
    return positive.reshape((2,) * (2 * num_qubits))


@pytest.mark.parametrize("circuit_seed", [0, 1, 2])
def test_compiled_noise_events_preserve_trace(circuit_seed):
    rng = np.random.default_rng(400 + circuit_seed)
    circuit = random_unitary_circuit(rng, 3, 20)
    noise = NoiseModel(oneq_error=0.1, twoq_error=0.15)
    program = compile_trajectory_program(circuit, noise)
    events = [event for step in program.steps for event in step.noise]
    assert events, "noisy compilation should produce error events"
    for event in events:
        tensor = random_density_tensor(rng, 3)
        before = np.trace(tensor.reshape(8, 8)).real
        after_tensor = _apply_noise_event(tensor, event, 3)
        after = np.trace(after_tensor.reshape(8, 8)).real
        assert after == pytest.approx(before, abs=1e-12)


@pytest.mark.parametrize("num_qubits", [2, 3])
def test_full_noisy_evolution_preserves_trace_and_positivity(num_qubits):
    rng = np.random.default_rng(50 + num_qubits)
    circuit = random_unitary_circuit(rng, num_qubits, 10 * num_qubits)
    noise = NoiseModel(oneq_error=0.07, twoq_error=0.1)
    rho = DensityMatrix(num_qubits).evolve(circuit, noise_model=noise)
    assert rho.trace() == pytest.approx(1.0, abs=1e-12)
    eigenvalues = np.linalg.eigvalsh(rho.matrix)
    assert eigenvalues.min() > -1e-12  # CPTP maps keep rho positive semidefinite
    assert rho.purity() <= 1.0 + 1e-12


def test_fusion_preserves_terminal_distribution_on_transpiled_circuits():
    # The shape the backend actually executes: transpiled rz/sx/cx chains,
    # where 1q-run fusion and 2q absorption fire constantly.
    from repro.simulators.gate import transpile
    from repro.simulators.gate.density import DensityMatrixSimulator

    rng = np.random.default_rng(123)
    logical = random_unitary_circuit(rng, 3, 15)
    logical.measure_all()
    transpiled = transpile(
        logical, basis_gates=["rz", "sx", "cx"], optimization_level=1
    ).circuit
    noise = NoiseModel(oneq_error=0.04, twoq_error=0.08)
    exact = DensityMatrixSimulator(noise_model=noise).probabilities(transpiled)
    # Compare against the unfused specification on the same transpiled circuit:
    # evolve the gates one by one, then read each outcome's probability off
    # the diagonal through the (possibly layout-permuted) clbit -> qubit map.
    unitary_only = Circuit(transpiled.num_qubits, transpiled.num_clbits)
    for inst in transpiled.instructions:
        if inst.name not in ("measure", "barrier"):
            unitary_only.append(inst.name, inst.qubits, inst.params)
    rho = unfused_noisy_density(unitary_only, noise)
    diagonal = rho.probabilities().reshape((2,) * transpiled.num_qubits)
    clbit_to_qubit = transpiled.measurement_map()
    assert set(clbit_to_qubit.values()) == set(range(transpiled.num_qubits))
    assert abs(sum(exact.values()) - 1.0) < 1e-12
    for key, probability in exact.items():
        index = [0] * transpiled.num_qubits
        for clbit, qubit in clbit_to_qubit.items():
            index[qubit] = int(key[clbit])
        assert diagonal[tuple(index)] == pytest.approx(probability, abs=1e-10)


# -- same-pair 2q fusion (PR 4) -----------------------------------------------------

def same_pair_heavy_circuit(num_qubits, rng, length=24):
    """A circuit dominated by consecutive 2q gates on repeated qubit pairs."""
    circuit = Circuit(num_qubits)
    twoq = ["cx", "cz", "rzz", "swap", "iswap", "rxx"]
    pairs = [(q, q + 1) for q in range(num_qubits - 1)] + [
        (q + 1, q) for q in range(num_qubits - 1)
    ]
    pair = pairs[int(rng.integers(len(pairs)))]
    for _ in range(length):
        if rng.random() < 0.7:  # mostly stay on the same (possibly flipped) pair
            pair = pair if rng.random() < 0.5 else (pair[1], pair[0])
        else:
            pair = pairs[int(rng.integers(len(pairs)))]
        name = twoq[int(rng.integers(len(twoq)))]
        params = [float(rng.uniform(0, 2 * np.pi))] if name in ("rzz", "rxx") else []
        circuit.append(name, list(pair), params)
        if rng.random() < 0.3:
            circuit.rz(float(rng.uniform(0, np.pi)), int(rng.integers(num_qubits)))
    return circuit


@pytest.mark.parametrize("circuit_seed", [0, 1, 2, 3])
def test_same_pair_fusion_preserves_unitary(circuit_seed):
    rng = np.random.default_rng(9000 + circuit_seed)
    circuit = same_pair_heavy_circuit(3, rng)
    program = compile_trajectory_program(circuit)
    # Fusion must actually fire: far fewer steps than 2q instructions.
    twoq_count = sum(1 for inst in circuit.instructions if inst.num_qubits == 2)
    assert len(program.steps) < twoq_count
    fused = circuit_unitary(circuit, fuse=True)
    unfused = circuit_unitary(circuit, fuse=False)
    assert np.allclose(fused, unfused, atol=1e-12)


def test_same_pair_run_collapses_to_one_step():
    circuit = Circuit(2)
    circuit.rzz(0.3, 0, 1)
    circuit.cx(0, 1)
    circuit.cx(1, 0)  # reversed orientation still fuses (SWAP conjugation)
    circuit.rzz(0.8, 1, 0)
    program = compile_trajectory_program(circuit)
    assert len(program.steps) == 1
    assert isinstance(program.steps[0], GateStep)


@pytest.mark.parametrize("circuit_seed", [0, 1, 2])
def test_same_pair_fusion_noise_pushing_is_exact(circuit_seed):
    # The earlier gate's (already conjugated) error events are pushed through
    # the later same-pair gate; the channel must be unchanged entry by entry.
    rng = np.random.default_rng(9100 + circuit_seed)
    circuit = same_pair_heavy_circuit(3, rng, length=14)
    noise = NoiseModel(oneq_error=0.06, twoq_error=0.11)
    fused = fused_noisy_density(circuit, noise)
    unfused = unfused_noisy_density(circuit, noise)
    assert np.allclose(fused.matrix, unfused.matrix, atol=1e-12)


def test_same_pair_fusion_does_not_cross_measurements():
    circuit = Circuit(2, 2)
    circuit.cx(0, 1)
    circuit.measure(0, 0)
    circuit.cx(0, 1)
    circuit.measure(0, 1)
    program = compile_trajectory_program(circuit)
    kinds = [type(step).__name__ for step in program.steps]
    # The mid-circuit measurement keeps the two CNOTs apart.
    assert kinds.count("GateStep") == 2
