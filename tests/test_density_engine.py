"""Unit tests for the exact density-matrix engine.

Covers the DensityMatrix primitive (channels, observables, fidelity), the
DensityMatrixSimulator result contract, hand-computed expectation values on
Bell/GHZ and depolarizing cases (the ISSUE's 1e-10 acceptance bar), and the
``trajectory_engine="density"`` routing through the simulator and backend
layers.
"""

import numpy as np
import pytest

from repro.core.errors import SimulationError
from repro.simulators.gate import (
    Circuit,
    DensityMatrix,
    DensityMatrixSimulator,
    MAX_DENSITY_QUBITS,
    NoiseModel,
    Statevector,
    StatevectorSimulator,
    pauli_terms,
)


def bell_circuit(measured=True):
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1)
    if measured:
        circuit.measure_all()
    return circuit


def ghz_circuit(num_qubits=3, measured=False):
    circuit = Circuit(num_qubits, num_qubits)
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    if measured:
        circuit.measure_all()
    return circuit


# -- DensityMatrix primitive ----------------------------------------------------


def test_initial_state_is_ground_state():
    rho = DensityMatrix(2)
    assert rho.trace() == pytest.approx(1.0)
    assert rho.purity() == pytest.approx(1.0)
    assert rho.probability_dict() == {"00": pytest.approx(1.0)}


def test_from_statevector_round_trip():
    state = Statevector(2).apply_gate("h", [0]).apply_gate("cx", [0, 1])
    rho = DensityMatrix.from_statevector(state)
    assert rho.purity() == pytest.approx(1.0)
    assert rho.fidelity(state) == pytest.approx(1.0)
    assert np.allclose(rho.probabilities(), state.probabilities())


def test_unitary_conjugation_matches_statevector():
    rng = np.random.default_rng(11)
    state = Statevector(3)
    rho = DensityMatrix(3)
    for name, qubits, params in [
        ("h", [0], ()),
        ("u", [1], (0.3, 1.1, 2.0)),
        ("cx", [0, 2], ()),
        ("rzz", [1, 2], (0.7,)),
        ("ccx", [0, 1, 2], ()),
    ]:
        state.apply_gate(name, qubits, params)
        rho.apply_gate(name, qubits, params)
    expected = np.outer(state.data, state.data.conj())
    assert np.allclose(rho.matrix, expected, atol=1e-12)
    del rng


def test_depolarize_trace_and_purity():
    rho = DensityMatrix(1).apply_gate("h", [0])
    rho.depolarize(0, 0.3)
    assert rho.trace() == pytest.approx(1.0, abs=1e-12)
    assert rho.purity() < 1.0


def test_full_depolarize_limit():
    # rate 3/4 with uniform X/Y/Z draws is the fully depolarizing channel.
    rho = DensityMatrix(1).apply_gate("h", [0])
    rho.depolarize(0, 0.75)
    assert np.allclose(rho.matrix, np.eye(2) / 2, atol=1e-12)


def test_reset_channel():
    rho = DensityMatrix(1).apply_gate("h", [0])
    rho.reset(0)
    assert rho.probability_dict() == {"0": pytest.approx(1.0)}


def test_project_traces_are_outcome_probabilities():
    rho = DensityMatrix(1).apply_gate("ry", [0], (1.0,))
    zero, one = rho.project(0)
    expected_one = float(np.sin(0.5) ** 2)
    assert zero.trace() == pytest.approx(1 - expected_one, abs=1e-12)
    assert one.trace() == pytest.approx(expected_one, abs=1e-12)


def test_density_rejects_too_many_qubits():
    with pytest.raises(SimulationError):
        DensityMatrix(MAX_DENSITY_QUBITS + 1)
    wide = Circuit(MAX_DENSITY_QUBITS + 1, 1)
    wide.h(0)
    with pytest.raises(SimulationError):
        DensityMatrixSimulator().run(wide, shots=1)


def test_density_matrix_validates_input():
    with pytest.raises(SimulationError):
        DensityMatrix(1, data=np.array([[0.0, 1.0], [0.0, 0.0]]))  # not Hermitian
    with pytest.raises(SimulationError):
        DensityMatrix(1, data=np.zeros((2, 2)))  # zero trace


# -- observables ------------------------------------------------------------------


def test_pauli_terms_parsing():
    assert pauli_terms("zzi", 3) == ((1.0, "ZZI"),)
    assert pauli_terms({"XX": 0.5, "ZZ": -1.0}, 2) == ((0.5, "XX"), (-1.0, "ZZ"))
    assert pauli_terms([("XI", 2.0)], 2) == ((2.0, "XI"),)
    with pytest.raises(SimulationError):
        pauli_terms("XY", 3)  # wrong width
    with pytest.raises(SimulationError):
        pauli_terms("XQ", 2)  # bad character
    with pytest.raises(SimulationError):
        pauli_terms({}, 2)  # no terms


def test_bell_expectations_exact():
    simulator = DensityMatrixSimulator()
    circuit = bell_circuit(measured=False)
    assert simulator.expectation(circuit, "ZZ") == pytest.approx(1.0, abs=1e-10)
    assert simulator.expectation(circuit, "XX") == pytest.approx(1.0, abs=1e-10)
    assert simulator.expectation(circuit, "YY") == pytest.approx(-1.0, abs=1e-10)
    assert simulator.expectation(circuit, "ZI") == pytest.approx(0.0, abs=1e-10)
    assert simulator.expectation(circuit, {"ZZ": 0.5, "XX": 0.25}) == pytest.approx(
        0.75, abs=1e-10
    )


def test_ghz_expectations_exact():
    simulator = DensityMatrixSimulator()
    circuit = ghz_circuit(3)
    assert simulator.expectation(circuit, "XXX") == pytest.approx(1.0, abs=1e-10)
    assert simulator.expectation(circuit, "ZZI") == pytest.approx(1.0, abs=1e-10)
    assert simulator.expectation(circuit, "IZZ") == pytest.approx(1.0, abs=1e-10)
    assert simulator.expectation(circuit, "ZII") == pytest.approx(0.0, abs=1e-10)


def test_single_qubit_depolarizing_expectation_hand_computed():
    # Depolarizing at rate p maps <P> -> (1 - 4p/3) <P> for any Pauli P.
    for p in (0.01, 0.12, 0.5):
        simulator = DensityMatrixSimulator(noise_model=NoiseModel(oneq_error=p))
        plus = Circuit(1, 1)
        plus.h(0)
        assert simulator.expectation(plus, "X") == pytest.approx(1 - 4 * p / 3, abs=1e-10)
        flipped = Circuit(1, 1)
        flipped.x(0)
        assert simulator.expectation(flipped, "Z") == pytest.approx(
            -(1 - 4 * p / 3), abs=1e-10
        )


def test_expectation_matches_statevector_on_noiseless_runs():
    circuit = ghz_circuit(3)
    state = Statevector(3).evolve(circuit.copy())
    density = DensityMatrixSimulator()
    for observable in ("XXX", "ZZI", {"XYZ": 0.3, "ZZZ": -0.7}):
        assert density.expectation(circuit, observable) == pytest.approx(
            state.expectation(observable), abs=1e-10
        )


def test_expectation_accepts_matrix_observable():
    rng = np.random.default_rng(5)
    raw = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
    hermitian = raw + raw.conj().T
    circuit = bell_circuit(measured=False)
    state = Statevector(2).evolve(circuit.copy())
    expected = float(np.real(np.vdot(state.data, hermitian @ state.data)))
    assert DensityMatrixSimulator().expectation(circuit, hermitian) == pytest.approx(
        expected, abs=1e-10
    )
    rho = DensityMatrix.from_statevector(state)
    assert rho.expectation(hermitian) == pytest.approx(expected, abs=1e-10)


# -- simulator result contract ------------------------------------------------------


def test_run_metadata_and_counts_contract():
    result = DensityMatrixSimulator().run(bell_circuit(), shots=1000, seed=9)
    assert result.metadata["method"] == "density"
    assert result.metadata["statevector_kind"] == "none"
    assert result.metadata["trajectory_engine"] == "density"
    assert result.metadata["implicit_measurement"] is False
    assert result.statevector is None
    assert result.counts.shots == 1000
    assert set(result.counts) <= {"00", "11"}


def test_implicit_measurement_contract():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1)  # no measure instructions
    result = DensityMatrixSimulator().run(circuit, shots=512, seed=2)
    assert result.metadata["implicit_measurement"] is True
    assert set(result.counts) <= {"00", "11"}
    assert result.counts.num_clbits == 2  # qubit-order keys over all qubits


def test_zero_shots_returns_empty_counts():
    result = DensityMatrixSimulator().run(bell_circuit(), shots=0, seed=1)
    assert dict(result.counts) == {}


def test_multinomial_sampling_is_seed_reproducible():
    simulator = DensityMatrixSimulator(noise_model=NoiseModel(oneq_error=0.05))
    first = simulator.run(bell_circuit(), shots=2048, seed=13)
    second = simulator.run(bell_circuit(), shots=2048, seed=13)
    assert dict(first.counts) == dict(second.counts)


def test_deterministic_sampling_is_exact_apportionment():
    simulator = DensityMatrixSimulator(sampling="deterministic")
    counts = simulator.run(bell_circuit(), shots=1000).counts
    assert dict(counts) == {"00": 500, "11": 500}
    # Largest remainder conserves the shot total even when p*shots is fractional.
    ghz = ghz_circuit(3, measured=True)
    skewed = DensityMatrixSimulator(
        noise_model=NoiseModel(oneq_error=0.07), sampling="deterministic"
    ).run(ghz, shots=997)
    assert skewed.counts.shots == 997


def test_invalid_sampling_mode_rejected():
    with pytest.raises(SimulationError):
        DensityMatrixSimulator(sampling="bogus")
    with pytest.raises(SimulationError):
        StatevectorSimulator(density_sampling="bogus")


def test_readout_error_exact_bell_distribution():
    r = 0.05
    simulator = DensityMatrixSimulator(noise_model=NoiseModel(readout_error=r))
    probs = simulator.probabilities(bell_circuit())
    assert probs["01"] == pytest.approx(r * (1 - r), abs=1e-12)
    assert probs["10"] == pytest.approx(r * (1 - r), abs=1e-12)
    assert probs["00"] == pytest.approx(0.5 * (1 - r) ** 2 + 0.5 * r**2, abs=1e-12)


def test_mid_circuit_measurement_exact_uniform():
    circuit = Circuit(1, 2)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.h(0)
    circuit.measure(0, 1)
    probs = DensityMatrixSimulator().probabilities(circuit)
    assert set(probs) == {"00", "01", "10", "11"}
    for value in probs.values():
        assert value == pytest.approx(0.25, abs=1e-12)


def test_reset_after_superposition_is_deterministic():
    circuit = Circuit(1, 1)
    circuit.h(0)
    circuit.reset(0)
    circuit.measure(0, 0)
    assert DensityMatrixSimulator().probabilities(circuit) == {
        "0": pytest.approx(1.0)
    }


# -- engine routing -----------------------------------------------------------------


def test_statevector_simulator_routes_density_engine():
    simulator = StatevectorSimulator(
        noise_model=NoiseModel(oneq_error=0.02),
        trajectory_engine="density",
        density_sampling="deterministic",
    )
    result = simulator.run(bell_circuit(), shots=1024, seed=4, return_statevector=True)
    assert result.metadata["method"] == "density"
    assert result.metadata["density_sampling"] == "deterministic"
    assert result.statevector is None  # mixed state: documented "none" kind
    assert result.counts.shots == 1024


def test_density_engine_through_gate_backend():
    from repro.backends import submit
    from repro.core import ContextDescriptor, ExecPolicy, ising_register, package
    from repro.oplib import measurement, prep_uniform

    register = ising_register("vars", 2, name="s")
    context = ContextDescriptor(
        exec=ExecPolicy(
            engine="gate.aer_simulator",
            samples=512,
            seed=3,
            options={
                "trajectory_engine": "density",
                "noise": {"oneq_error": 0.01, "twoq_error": 0.02},
            },
        )
    )
    bundle = package(
        register, [prep_uniform(register), measurement(register)], context, name="density-smoke"
    )
    result = submit(bundle)
    assert result.metadata["simulation_method"] == "density"
    assert result.metadata["trajectory_engine"] == "density"
    assert result.counts.shots == 512
