"""Tests for merged (batch-axis) multi-job execution in the simulator.

The headline contract is **bit-identity**: :meth:`StatevectorSimulator.run_merged`
executes a whole group of ``(shots, seed)`` jobs as one batched evolution —
shared compiled template, one tensor pass over the concatenated batch axis —
yet every job's seeded counts are exactly what a standalone
:meth:`~StatevectorSimulator.run` would produce.  The segmented chunk plan
makes this hold by construction: each job spawns its own per-chunk
``SeedSequence`` streams exactly as it would alone, and every RNG draw inside
the merged run happens per segment, in standalone order and size.

The matrix covers both trajectory engines (batched amplitudes and the
stabilizer tableau), group sizes {2, 4, 8}, worker counts {1, 2}, and both
the thread and process chunk executors, plus the exact (noiseless) path, the
batch-width-1 GEMM guard, and worker-crash recovery mid-merge.
"""

import numpy as np
import pytest

from repro.simulators.gate import Circuit, NoiseModel, StatevectorSimulator
from repro.simulators.gate.faults import FaultEvent, FaultPlan


@pytest.fixture(scope="module")
def process_pool():
    """Tear the persistent worker pool down after this module's tests."""
    from repro.simulators.gate.procpool import shutdown_worker_pool

    yield
    shutdown_worker_pool()


def noisy_circuit(n=5):
    circuit = Circuit(n, n)
    for q in range(n):
        circuit.h(q)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    circuit.measure(1, 1)
    circuit.reset(2)
    for q in range(n):
        circuit.rz(0.3 * (q + 1), q)
    for q in range(n):
        circuit.measure(q, q)
    return circuit


def clifford_circuit(n=8):
    circuit = Circuit(n, n)
    for q in range(n):
        circuit.h(q)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    circuit.measure(0, 0)
    circuit.reset(1)
    for q in range(n):
        circuit.measure(q, q)
    return circuit


NOISE = NoiseModel(oneq_error=0.01, twoq_error=0.02, readout_error=0.005)


def group_specs(size):
    """Deterministic, deliberately ragged (shots, seed) specs for a group."""
    return [(96 + 37 * i, 11 + i) for i in range(size)]


def make_simulator(engine, executor, workers):
    kwargs = dict(
        noise_model=NOISE,
        trajectory_workers=workers,
        trajectory_executor=executor,
        # Small enough that every job spans several chunks, so the merged
        # plan genuinely packs cross-job super-chunks.
        max_batch_memory=16 * 1024 if engine == "batched" else 2 * 1024,
    )
    if engine == "stabilizer":
        kwargs["trajectory_engine"] = "stabilizer"
    return StatevectorSimulator(**kwargs)


# -- the bit-identity matrix --------------------------------------------------------

@pytest.mark.parametrize("engine", ["batched", "stabilizer"])
@pytest.mark.parametrize("executor", ["thread", "process"])
@pytest.mark.parametrize("workers", [1, 2])
def test_merged_counts_bit_identical_to_solo(engine, executor, workers, process_pool):
    circuit = noisy_circuit() if engine == "batched" else clifford_circuit()
    simulator = make_simulator(engine, executor, workers)
    for size in (2, 4, 8):
        specs = group_specs(size)
        solo = [simulator.run(circuit, shots=s, seed=sd) for s, sd in specs]
        merged = simulator.run_merged(circuit, specs)
        assert len(merged) == size
        for position, (one, alone) in enumerate(zip(merged, solo)):
            assert dict(one.counts) == dict(alone.counts)
            assert one.counts.shots == specs[position][0]
            info = one.metadata["merged"]
            assert info["group_size"] == size
            assert info["position"] == position
            assert one.metadata["trajectory_engine"] == engine


def test_merged_group_is_worker_count_invariant():
    # The merged plan (and therefore every job's counts) must not depend on
    # how many workers execute it — same contract as standalone chunking.
    circuit = noisy_circuit()
    specs = group_specs(4)
    baseline = None
    for workers in (1, 2, 3):
        simulator = make_simulator("batched", "thread", workers)
        counts = [dict(r.counts) for r in simulator.run_merged(circuit, specs)]
        if baseline is None:
            baseline = counts
        else:
            assert counts == baseline


def test_exact_path_merges_noiseless_groups():
    circuit = Circuit(4, 4)
    for q in range(4):
        circuit.h(q)
    circuit.cx(0, 1)
    for q in range(4):
        circuit.measure(q, q)
    simulator = StatevectorSimulator()
    specs = [(500, 1), (1024, 2), (77, 3)]
    solo = [simulator.run(circuit, shots=s, seed=sd) for s, sd in specs]
    merged = simulator.run_merged(circuit, specs)
    for one, alone in zip(merged, solo):
        assert dict(one.counts) == dict(alone.counts)
        assert one.metadata["method"] == "exact"
        # One shared evolution for the whole group.
        assert one.metadata["merged"]["merged_chunks"] == 1


def test_width_one_chunk_guard_falls_back_solo():
    # GEMM amplitudes at batch width exactly 1 differ by ~1 ulp from the
    # same column inside a wider batch, so a job whose standalone plan
    # contains a width-1 chunk must run alone — and stay bit-identical.
    circuit = noisy_circuit()
    simulator = StatevectorSimulator(noise_model=NOISE)
    specs = [(1, 9), (512, 10)]
    solo = [simulator.run(circuit, shots=s, seed=sd) for s, sd in specs]
    merged = simulator.run_merged(circuit, specs)
    for one, alone in zip(merged, solo):
        assert dict(one.counts) == dict(alone.counts)
    assert "merged" not in merged[0].metadata  # the 1-shot job ran solo
    assert "merged" in merged[1].metadata


def test_zero_shot_member_rides_along():
    circuit = noisy_circuit()
    simulator = StatevectorSimulator(noise_model=NOISE, max_batch_memory=16 * 1024)
    specs = [(256, 1), (0, 2), (128, 3)]
    solo = [simulator.run(circuit, shots=s, seed=sd) for s, sd in specs]
    merged = simulator.run_merged(circuit, specs)
    for one, alone in zip(merged, solo):
        assert dict(one.counts) == dict(alone.counts)
    assert merged[1].counts.shots == 0


def test_merged_rejects_invalid_specs():
    circuit = noisy_circuit()
    simulator = StatevectorSimulator(noise_model=NOISE)
    assert simulator.run_merged(circuit, []) == []
    with pytest.raises(Exception, match="shots"):
        simulator.run_merged(circuit, [(-1, 0)])


# -- fault tolerance mid-merge ------------------------------------------------------

@pytest.mark.parametrize("engine", ["batched", "stabilizer"])
def test_killed_worker_mid_merge_recovers_bit_identical(engine, process_pool):
    # A worker killed while executing a merged super-chunk: recovery
    # re-dispatches the lost chunks with their original per-job streams, so
    # every member's counts still match a fault-free standalone run.
    circuit = noisy_circuit() if engine == "batched" else clifford_circuit()
    specs = group_specs(3)
    clean = make_simulator(engine, "process", 2)
    solo = [clean.run(circuit, shots=s, seed=sd) for s, sd in specs]
    kwargs = dict(
        noise_model=NOISE,
        trajectory_workers=2,
        trajectory_executor="process",
        max_batch_memory=16 * 1024 if engine == "batched" else 2 * 1024,
        fault_plan=FaultPlan([FaultEvent("kill", chunk_id=0)]),
    )
    if engine == "stabilizer":
        kwargs["trajectory_engine"] = "stabilizer"
    faulted = StatevectorSimulator(**kwargs)
    merged = faulted.run_merged(circuit, specs)
    for one, alone in zip(merged, solo):
        assert dict(one.counts) == dict(alone.counts)
    recovery = merged[0].metadata["executor_recovery"]
    assert recovery["pool_rebuilds"] == 1
    assert recovery["groups_redispatched"] >= 1
