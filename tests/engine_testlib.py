"""Shared helpers for the differential / property test harness.

Seeded random-circuit generators and distribution-distance metrics used by
``test_differential_engines.py`` and ``test_fusion_properties.py``.  Not a
test module itself (no ``test_`` prefix, so pytest does not collect it).
"""

from typing import Dict, Mapping, Optional

import numpy as np

from repro.simulators.gate import Circuit

ONEQ_GATES = (
    ("h", 0),
    ("x", 0),
    ("y", 0),
    ("z", 0),
    ("s", 0),
    ("t", 0),
    ("sx", 0),
    ("rx", 1),
    ("ry", 1),
    ("rz", 1),
    ("p", 1),
    ("u", 3),
)
TWOQ_GATES = (
    ("cx", 0),
    ("cz", 0),
    ("swap", 0),
    ("rzz", 1),
    ("cp", 1),
    ("crx", 1),
)

# Clifford-only gate pools: every name compiles onto the stabilizer tableau
# (directly or through the fusion layer's CLIFFORD_GATES lowering), so the
# generated circuits run on all four engines — including "stabilizer".
CLIFFORD_ONEQ_GATES = ("h", "x", "y", "z", "s", "sdg", "sx", "sxdg", "id")
CLIFFORD_TWOQ_GATES = ("cx", "cz", "cy", "swap", "iswap")


def random_unitary_circuit(
    rng: np.random.Generator,
    num_qubits: int,
    depth: int,
    *,
    twoq_fraction: float = 0.4,
) -> Circuit:
    """A random purely-unitary circuit (no measure/reset/barrier).

    Each of the *depth* slots draws a one-qubit gate (random qubit, random
    angles) or, with probability *twoq_fraction*, a two-qubit gate on a
    random qubit pair — adjacent with 50% probability so both the fused
    adjacent-GEMM path and the generic slice-kernel path are exercised.
    """
    circuit = Circuit(num_qubits, num_qubits)
    for _ in range(depth):
        if num_qubits >= 2 and rng.random() < twoq_fraction:
            name, num_params = TWOQ_GATES[rng.integers(len(TWOQ_GATES))]
            if rng.random() < 0.5 and num_qubits >= 2:
                a = int(rng.integers(num_qubits - 1))
                pair = [a, a + 1] if rng.random() < 0.5 else [a + 1, a]
            else:
                pair = list(rng.choice(num_qubits, size=2, replace=False))
            circuit.append(name, pair, [float(rng.uniform(0, 2 * np.pi)) for _ in range(num_params)])
        else:
            name, num_params = ONEQ_GATES[rng.integers(len(ONEQ_GATES))]
            qubit = int(rng.integers(num_qubits))
            circuit.append(name, [qubit], [float(rng.uniform(0, 2 * np.pi)) for _ in range(num_params)])
    return circuit


def random_clifford_circuit(
    rng: np.random.Generator,
    num_qubits: int,
    depth: int,
    *,
    twoq_fraction: float = 0.4,
    measure: bool = True,
) -> Circuit:
    """A seeded random Clifford circuit for the stabilizer differential sweep.

    Mirrors :func:`random_unitary_circuit` but draws only from the Clifford
    pools above, so the same circuit is executable by the stabilizer tableau
    engine *and* the exact amplitude/density engines (at widths the latter
    can reach).  With *measure* (the default) every qubit is measured at the
    end, exercising the shared terminal-sampling contract.
    """
    circuit = Circuit(num_qubits, num_qubits)
    for _ in range(depth):
        if num_qubits >= 2 and rng.random() < twoq_fraction:
            name = CLIFFORD_TWOQ_GATES[rng.integers(len(CLIFFORD_TWOQ_GATES))]
            if rng.random() < 0.5:
                a = int(rng.integers(num_qubits - 1))
                pair = [a, a + 1] if rng.random() < 0.5 else [a + 1, a]
            else:
                pair = list(rng.choice(num_qubits, size=2, replace=False))
            circuit.append(name, pair)
        else:
            name = CLIFFORD_ONEQ_GATES[rng.integers(len(CLIFFORD_ONEQ_GATES))]
            circuit.append(name, [int(rng.integers(num_qubits))])
    if measure:
        circuit.measure_all()
    return circuit


def random_mixed_circuit(
    rng: np.random.Generator,
    num_qubits: int,
    depth: int,
    *,
    mid_measure_probability: float = 0.15,
    reset_probability: float = 0.1,
) -> Circuit:
    """A random circuit with mid-circuit measurements/resets and terminal measures.

    Gate slots follow :func:`random_unitary_circuit`; between them, qubits are
    occasionally measured mid-circuit (into their own clbit) or reset.  Every
    qubit is measured at the end, so the trajectory path is always exercised
    with a full terminal block on top of any mid-circuit activity.
    """
    circuit = Circuit(num_qubits, num_qubits)
    for _ in range(depth):
        roll = rng.random()
        if roll < mid_measure_probability:
            qubit = int(rng.integers(num_qubits))
            circuit.measure(qubit, qubit)
            continue
        if roll < mid_measure_probability + reset_probability:
            circuit.reset(int(rng.integers(num_qubits)))
            continue
        unitary = random_unitary_circuit(rng, num_qubits, 1)
        circuit.compose(unitary)
    circuit.measure_all()
    return circuit


def total_variation_distance(
    counts: Mapping[str, int], exact: Mapping[str, float]
) -> float:
    """TVD between an empirical histogram and an exact distribution."""
    shots = sum(counts.values())
    if shots == 0:
        raise ValueError("empty counts")
    keys = set(counts) | set(exact)
    return 0.5 * sum(
        abs(counts.get(key, 0) / shots - exact.get(key, 0.0)) for key in keys
    )


def chi_square_statistic(
    counts: Mapping[str, int], exact: Mapping[str, float], *, floor: float = 1e-12
) -> float:
    """Pearson chi-square of an empirical histogram against exact probabilities.

    Outcomes with exact probability below *floor* are pooled into a single
    tail cell so near-impossible outcomes cannot blow up the statistic.
    """
    shots = sum(counts.values())
    if shots == 0:
        raise ValueError("empty counts")
    statistic = 0.0
    tail_observed = 0
    tail_expected = 0.0
    for key in set(counts) | set(exact):
        probability = exact.get(key, 0.0)
        observed = counts.get(key, 0)
        if probability < floor:
            tail_observed += observed
            tail_expected += probability * shots
            continue
        expected = probability * shots
        statistic += (observed - expected) ** 2 / expected
    if tail_observed or tail_expected > floor:
        statistic += (tail_observed - tail_expected) ** 2 / max(tail_expected, floor)
    return statistic


def counts_distribution(counts: Mapping[str, int]) -> Dict[str, float]:
    """Empirical probabilities of a counts histogram."""
    shots = sum(counts.values())
    return {key: value / shots for key, value in counts.items()} if shots else {}
