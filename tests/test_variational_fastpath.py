"""Tests for the variational fast path (PR 4).

Covers the three layers of the fast path:

* **parametric compilation cache** — re-binding a cached template to a
  structurally identical circuit with different angles produces a program
  bit-identical to a fresh compilation, and seeded simulator counts are
  identical whether the compile came from a cold or warm cache;
* **shot-free expectation evaluation** — ``variational_evaluation =
  "expectation"`` matches the density oracle exactly on noiseless circuits,
  routes through the oracle when noise + ``trajectory_engine="density"``
  are configured, and rejects noisy sampling engines;
* **batched parameter-grid sweeps** — the vectorized grid equals sequential
  per-candidate evaluation, and is bit-identical under any chunking of the
  candidate axis.
"""

import numpy as np
import pytest

from repro.core.errors import ContextError
from repro.problems import MaxCutProblem
from repro.simulators.gate import (
    Circuit,
    StatevectorSimulator,
    compile_trajectory_program,
    compile_trajectory_program_cached,
    parametric_cache_clear,
    parametric_cache_info,
)
from repro.simulators.gate.fusion import GateStep
from repro.workflows import (
    VariationalEvaluator,
    default_gate_context,
    evaluate_angles,
    optimize_qaoa,
)


def qaoa_like_circuit(num_qubits, gamma, beta, *, measure=True, mid_measure=False):
    """A QAOA-shaped circuit whose angles are the only varying structure."""
    circuit = Circuit(num_qubits, num_qubits)
    for q in range(num_qubits):
        circuit.h(q)
    for q in range(num_qubits - 1):
        circuit.rzz(2.0 * gamma, q, q + 1)
    if mid_measure:
        circuit.measure(0, 0)
    for q in range(num_qubits):
        circuit.rx(2.0 * beta, q)
    if measure:
        for q in range(num_qubits):
            circuit.measure(q, q)
    return circuit


def assert_programs_identical(a, b):
    """Bit-exact equality of two compiled trajectory programs."""
    assert a.num_qubits == b.num_qubits and a.num_clbits == b.num_clbits
    assert a.terminal == b.terminal
    assert len(a.steps) == len(b.steps)
    for step_a, step_b in zip(a.steps, b.steps):
        assert type(step_a) is type(step_b)
        if isinstance(step_a, GateStep):
            assert step_a.qubits == step_b.qubits
            assert np.array_equal(step_a.matrix, step_b.matrix)
            assert step_a.plan == step_b.plan
        else:
            assert step_a == step_b


# -- parametric compilation cache ------------------------------------------------


def test_parametric_rebind_matches_fresh_compile():
    parametric_cache_clear()
    cold = qaoa_like_circuit(5, 0.3, 0.7)
    warm = qaoa_like_circuit(5, 1.1, 0.2)
    compile_trajectory_program_cached(cold)
    info = parametric_cache_info()
    assert info["misses"] == 1 and info["size"] == 1
    rebound = compile_trajectory_program_cached(warm)
    info = parametric_cache_info()
    assert info["hits"] == 1, info
    fresh = compile_trajectory_program(warm)
    assert_programs_identical(rebound, fresh)


def test_parametric_cache_keyed_on_structure_not_params():
    parametric_cache_clear()
    for angle in (0.1, 0.2, 0.3, 0.4):
        compile_trajectory_program_cached(qaoa_like_circuit(4, angle, -angle))
    info = parametric_cache_info()
    assert info["misses"] == 1 and info["hits"] == 3
    # A different structure (extra gate) must miss.
    other = qaoa_like_circuit(4, 0.1, -0.1)
    other.instructions.insert(0, other.instructions[0])
    compile_trajectory_program_cached(other)
    assert parametric_cache_info()["misses"] == 2


def test_barriers_do_not_change_the_cache_key():
    parametric_cache_clear()
    plain = qaoa_like_circuit(4, 0.5, 0.6)
    compile_trajectory_program_cached(plain)
    barred = Circuit(4, 4)
    for inst in qaoa_like_circuit(4, 0.9, 0.1).instructions:
        barred.append(inst.name, inst.qubits, inst.params, inst.clbits)
        if inst.name == "rzz":
            barred.barrier()
    rebound = compile_trajectory_program_cached(barred)
    assert parametric_cache_info()["hits"] == 1
    assert_programs_identical(rebound, compile_trajectory_program(barred))


def test_seeded_counts_identical_across_cold_and_warm_cache():
    # Mid-circuit measurement forces the (noiseless) batched trajectory
    # path, which compiles through the cache.
    circuit = qaoa_like_circuit(4, 0.4, 0.9, mid_measure=True)
    simulator = StatevectorSimulator()
    parametric_cache_clear()
    cold = simulator.run(circuit, shots=512, seed=11).counts
    assert parametric_cache_info()["misses"] >= 1
    warm = simulator.run(circuit, shots=512, seed=11).counts
    assert parametric_cache_info()["hits"] >= 1
    assert dict(cold) == dict(warm)


def test_exact_path_uses_fused_program_and_cache():
    parametric_cache_clear()
    circuit = qaoa_like_circuit(6, 0.3, 0.5)
    simulator = StatevectorSimulator()
    first = simulator.run(circuit, shots=256, seed=3)
    assert first.metadata["method"] == "exact"
    assert parametric_cache_info()["misses"] == 1
    second = simulator.run(qaoa_like_circuit(6, 1.2, 0.8), shots=256, seed=3)
    assert parametric_cache_info()["hits"] == 1
    # Same seed, same angles -> bit-identical histogram on a warm cache.
    again = simulator.run(circuit, shots=256, seed=3)
    assert dict(again.counts) == dict(first.counts)
    assert second.counts.shots == 256


# -- expectation evaluation mode --------------------------------------------------


@pytest.fixture
def pentagon():
    """A 5-cycle with uneven weights (richer landscape than the 4-cycle)."""
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]
    return MaxCutProblem.from_edges(edges, weights=[1.0, 2.0, 1.0, 1.5, 0.5])


def test_expectation_mode_matches_density_oracle(pentagon):
    ctx = default_gate_context(pentagon, variational_evaluation="expectation")
    pure = VariationalEvaluator(pentagon, reps=1, context=ctx)
    ctx_density = default_gate_context(pentagon, variational_evaluation="expectation")
    ctx_density.exec.options["trajectory_engine"] = "density"
    oracle = VariationalEvaluator(pentagon, reps=1, context=ctx_density)
    for gamma, beta in [(0.3, 0.4), (-0.8, 1.2), (2.0, 0.1)]:
        assert pure.evaluate([gamma], [beta]) == pytest.approx(
            oracle.evaluate([gamma], [beta]), abs=1e-10
        )


def test_expectation_mode_matches_sampled_statistically(pentagon):
    ctx = default_gate_context(
        pentagon, samples=20000, variational_evaluation="expectation"
    )
    exact = VariationalEvaluator(pentagon, reps=1, context=ctx).evaluate([0.4], [0.6])
    sampled = evaluate_angles(
        pentagon, [0.4], [0.6], context=default_gate_context(pentagon, samples=20000)
    )
    assert sampled == pytest.approx(exact, abs=0.15)


def test_expectation_mode_rejects_noisy_sampling_engines(pentagon):
    ctx = default_gate_context(pentagon, variational_evaluation="expectation")
    ctx.exec.options["noise"] = {"oneq_error": 1e-3}
    with pytest.raises(ContextError):
        VariationalEvaluator(pentagon, reps=1, context=ctx)
    # ... but the density oracle accepts noise and lowers the expected cut.
    ctx.exec.options["trajectory_engine"] = "density"
    noisy = VariationalEvaluator(pentagon, reps=1, context=ctx)
    ctx_clean = default_gate_context(pentagon, variational_evaluation="expectation")
    clean = VariationalEvaluator(pentagon, reps=1, context=ctx_clean)
    assert noisy.evaluate([0.4], [0.6]) == pytest.approx(
        clean.evaluate([0.4], [0.6]), abs=0.05
    )


def test_unknown_variational_mode_rejected(pentagon):
    ctx = default_gate_context(pentagon)
    ctx.exec.options["variational_evaluation"] = "oracle"
    with pytest.raises(ContextError):
        VariationalEvaluator(pentagon, context=ctx)


# -- batched parameter-grid sweeps -------------------------------------------------


def test_grid_sweep_matches_sequential_evaluation(pentagon):
    ctx = default_gate_context(pentagon, variational_evaluation="expectation")
    evaluator = VariationalEvaluator(pentagon, reps=1, context=ctx)
    grid = np.linspace(0.1, 3.0, 6)
    gammas = np.repeat(grid, len(grid))
    betas = np.tile(grid, len(grid))
    batched = evaluator.evaluate_grid(gammas, betas)
    sequential = np.array(
        [evaluator.evaluate([g], [b]) for g, b in zip(gammas, betas)]
    )
    assert np.allclose(batched, sequential, atol=1e-10)


def test_grid_sweep_bit_identical_under_chunking(pentagon):
    ctx = default_gate_context(pentagon, variational_evaluation="expectation")
    evaluator = VariationalEvaluator(pentagon, reps=1, context=ctx)
    grid = np.linspace(0.2, 2.8, 7)
    gammas = np.repeat(grid, len(grid))
    betas = np.tile(grid, len(grid))
    bytes_per_column = 2 * 16 * (1 << pentagon.num_nodes)
    one_chunk = evaluator.evaluate_grid(gammas, betas)
    per_candidate = evaluator.evaluate_grid(
        gammas, betas, max_batch_memory=bytes_per_column
    )
    ragged = evaluator.evaluate_grid(
        gammas, betas, max_batch_memory=5 * bytes_per_column
    )
    assert np.array_equal(one_chunk, per_candidate)
    assert np.array_equal(one_chunk, ragged)


def test_grid_sweep_multilayer_candidates(pentagon):
    ctx = default_gate_context(pentagon, variational_evaluation="expectation")
    evaluator = VariationalEvaluator(pentagon, reps=2, context=ctx)
    rng = np.random.default_rng(5)
    gammas = rng.uniform(0, np.pi, size=(4, 2))
    betas = rng.uniform(0, np.pi, size=(4, 2))
    batched = evaluator.evaluate_grid(gammas, betas)
    sequential = np.array(
        [
            evaluator.evaluate(tuple(gammas[k]), tuple(betas[k]))
            for k in range(len(gammas))
        ]
    )
    assert np.allclose(batched, sequential, atol=1e-10)


def test_grid_sweep_falls_back_sequentially_for_density(pentagon):
    ctx = default_gate_context(pentagon, variational_evaluation="expectation")
    ctx.exec.options["trajectory_engine"] = "density"
    evaluator = VariationalEvaluator(pentagon, reps=1, context=ctx)
    assert not evaluator.supports_batched_grid
    values = evaluator.evaluate_grid([0.3, 0.9], [0.5, 0.5])
    assert values.shape == (2,)
    assert evaluator.evaluations == 2


# -- the optimiser end to end ------------------------------------------------------


def test_optimize_qaoa_expectation_mode_finds_good_angles(pentagon):
    ctx = default_gate_context(pentagon, variational_evaluation="expectation")
    result = optimize_qaoa(
        pentagon, reps=1, context=ctx, grid_resolution=6, refine=True,
        max_refine_iterations=20,
    )
    assert result.approximation_ratio > 0.65
    # Grid stage (25 candidates) plus refinement evaluations, all recorded.
    assert result.evaluations == len(result.history)
    assert result.evaluations >= 25
    bad = VariationalEvaluator(pentagon, reps=1, context=ctx).evaluate([0.01], [0.01])
    assert result.best_expected_cut > bad


def test_optimize_qaoa_sampled_mode_unchanged_contract(pentagon):
    result = optimize_qaoa(
        pentagon,
        reps=1,
        context=default_gate_context(pentagon, samples=512),
        grid_resolution=4,
        refine=False,
    )
    assert result.evaluations == 9 == len(result.history)
    assert result.best_expected_cut > 0.0


def test_evaluator_session_reuses_intent_artifacts(pentagon):
    ctx = default_gate_context(pentagon, variational_evaluation="expectation")
    evaluator = VariationalEvaluator(pentagon, reps=1, context=ctx)
    template_before = evaluator.template
    qdt_before = evaluator.qdt
    evaluator.evaluate([0.2], [0.3])
    evaluator.evaluate([1.2], [2.3])
    assert evaluator.template is template_before
    assert evaluator.qdt is qdt_before
    assert evaluator.evaluations == 2
