"""Tests for serialization helpers, provenance, and the rep_kind registry."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import (
    DescriptorError,
    RepKindInfo,
    build_provenance,
    get_rep_kind,
    has_rep_kind,
    list_rep_kinds,
    register_rep_kind,
)
from repro.core.provenance import Provenance
from repro.core.serialization import canonical_dumps, digest, load_json, pretty_dumps, save_json


def test_canonical_dumps_sorted_and_stable():
    a = canonical_dumps({"b": 1, "a": 2})
    b = canonical_dumps({"a": 2, "b": 1})
    assert a == b == '{"a":2,"b":1}'


def test_encoder_handles_fractions_and_numpy():
    doc = {"scale": Fraction(1, 1024), "n": np.int64(3), "x": np.float64(0.5),
           "flag": np.bool_(True), "arr": np.array([1, 2])}
    text = canonical_dumps(doc)
    assert '"1/1024"' in text and '"n":3' in text and "[1,2]" in text


def test_digest_changes_with_content():
    assert digest({"a": 1}) != digest({"a": 2})
    assert digest({"a": 1}) == digest({"a": 1})


def test_save_and_load_json(tmp_path):
    path = save_json({"x": [1, 2, 3]}, tmp_path / "sub" / "doc.json")
    assert path.exists()
    assert load_json(path) == {"x": [1, 2, 3]}
    assert pretty_dumps({"x": 1}).startswith("{")


def test_provenance_digest_and_round_trip():
    prov = build_provenance({"payload": 42}, producer="tests", note="hi")
    assert prov.inputs_digest == digest({"payload": 42})
    doc = prov.to_dict()
    rebuilt = Provenance.from_dict(doc)
    assert rebuilt.inputs_digest == prov.inputs_digest
    assert rebuilt.extra["note"] == "hi"
    assert Provenance.from_dict(None) is None


def test_standard_rep_kinds_present():
    for kind in ("QFT_TEMPLATE", "ISING_PROBLEM", "MIXER_RX", "MEASUREMENT", "PREP_UNIFORM"):
        assert has_rep_kind(kind)
    assert "ISING_PROBLEM" in list_rep_kinds("optimization")
    info = get_rep_kind("MEASUREMENT")
    assert info.measures and not info.unitary


def test_unknown_rep_kind_is_conservative():
    info = get_rep_kind("SOME_FUTURE_THING")
    assert not info.unitary and not info.invertible
    assert info.category == "extension"


def test_duplicate_registration_rejected():
    name = "TEST_KIND_UNIQUE_XYZ"
    register_rep_kind(RepKindInfo(name=name, category="test"))
    assert has_rep_kind(name)
    with pytest.raises(DescriptorError):
        register_rep_kind(RepKindInfo(name=name, category="test"))
    register_rep_kind(RepKindInfo(name=name, category="test2"), replace=True)
    assert get_rep_kind(name).category == "test2"
