"""Tests for result schemas and clbit references."""

import pytest

from repro.core import DescriptorError, ResultSchema, ising_register, phase_register
from repro.core.result_schema import ClbitRef


def test_clbit_ref_parsing():
    ref = ClbitRef.parse("reg_phase[3]")
    assert ref.register == "reg_phase" and ref.index == 3
    assert str(ref) == "reg_phase[3]"
    with pytest.raises(DescriptorError):
        ClbitRef.parse("reg_phase")
    with pytest.raises(DescriptorError):
        ClbitRef.parse("reg[x]")


def test_for_register_matches_listing3(reg_phase10):
    schema = ResultSchema.for_register(reg_phase10)
    doc = schema.to_dict()
    assert doc["basis"] == "Z"
    assert doc["datatype"] == "AS_PHASE"
    assert doc["bit_significance"] == "LSB_0"
    assert doc["clbit_order"] == [f"reg_phase[{i}]" for i in range(10)]
    assert schema.num_clbits == 10


def test_round_trip():
    schema = ResultSchema(basis="Z", datatype="AS_BOOL", clbit_order=["s[0]", "s[1]"])
    rebuilt = ResultSchema.from_dict(schema.to_dict())
    assert rebuilt.to_dict() == schema.to_dict()
    assert ResultSchema.from_dict(None) is None


def test_invalid_basis_rejected():
    with pytest.raises(DescriptorError):
        ResultSchema(basis="W", clbit_order=["s[0]"])


def test_register_bits_extraction(ising_vars):
    schema = ResultSchema.for_register(ising_vars)
    # counts key char c = clbit c; clbit c maps to carrier c here
    assert schema.register_bits("0101", ising_vars) == "0101"
    # reversed clbit order maps clbit 0 to carrier 3
    reversed_schema = ResultSchema(
        basis="Z",
        datatype="AS_BOOL",
        clbit_order=[f"ising_vars[{i}]" for i in (3, 2, 1, 0)],
    )
    assert reversed_schema.register_bits("0001", ising_vars) == "1000"


def test_register_bits_wrong_length(ising_vars):
    schema = ResultSchema.for_register(ising_vars)
    with pytest.raises(DescriptorError):
        schema.register_bits("01", ising_vars)


def test_validate_against_unknown_register(ising_vars):
    schema = ResultSchema(basis="Z", datatype="AS_BOOL", clbit_order=["ghost[0]"])
    with pytest.raises(DescriptorError):
        schema.validate_against({"ising_vars": ising_vars})
    out_of_range = ResultSchema(basis="Z", datatype="AS_BOOL", clbit_order=["ising_vars[9]"])
    with pytest.raises(DescriptorError):
        out_of_range.validate_against({"ising_vars": ising_vars})


def test_multi_register_schema():
    a = ising_register("a", 2)
    b = ising_register("b", 1)
    schema = ResultSchema(
        basis="Z", datatype="AS_BOOL", clbit_order=["a[0]", "b[0]", "a[1]"]
    )
    assert schema.registers() == ["a", "b"]
    assert schema.clbits_for_register("a") == [(0, 0), (2, 1)]
    assert schema.register_bits("110", a) == "10"
    assert schema.register_bits("110", b) == "1"
