"""Tests for the AST invariant linter (``tools/lint_invariants.py``).

Covers: seeded violations are detected with the exact rule id, the
``# lint: allow(...)`` pragma suppresses (and is counted), the analyze.py
driver exits nonzero on a seeded lint violation, and — the repo invariant
itself — the full ``src/repro`` tree lints clean with at most five pragmas.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import lint_invariants  # noqa: E402  (needs the tools/ path above)

MAX_PRAGMAS = 5


def write_module(tmp_path: Path, body: str, *, gate_scope: bool = False) -> Path:
    """Write a throwaway module, optionally under a simulators/gate subtree."""
    directory = tmp_path / "simulators" / "gate" if gate_scope else tmp_path
    directory.mkdir(parents=True, exist_ok=True)
    module = directory / "sample.py"
    module.write_text(textwrap.dedent(body), encoding="utf-8")
    return module


def rule_ids(violations):
    return [rule for _, _, rule, _ in violations]


# -- seeded violations --------------------------------------------------------------


def test_global_rng_call_is_rng001(tmp_path):
    module = write_module(
        tmp_path,
        """
        import numpy as np

        def draw():
            return np.random.rand(4)
        """,
    )
    violations, suppressed = lint_invariants.lint_file(module)
    assert rule_ids(violations) == ["RNG001"]
    assert violations[0][1] == 5  # the np.random.rand line
    assert suppressed == []


def test_stdlib_random_is_rng001(tmp_path):
    module = write_module(
        tmp_path,
        """
        import random

        def draw():
            return random.random()
        """,
    )
    assert rule_ids(lint_invariants.lint_file(module)[0]) == ["RNG001"]


def test_unseeded_default_rng_is_rng002(tmp_path):
    module = write_module(
        tmp_path,
        """
        import numpy as np

        RNG = np.random.default_rng()
        SEEDED = np.random.default_rng(7)
        """,
    )
    assert rule_ids(lint_invariants.lint_file(module)[0]) == ["RNG002"]


def test_unbounded_lru_cache_is_cache001_gate_scope_only(tmp_path):
    body = """
    import functools

    @functools.lru_cache(maxsize=None)
    def fused(key):
        return key
    """
    gate_module = write_module(tmp_path, body, gate_scope=True)
    assert rule_ids(lint_invariants.lint_file(gate_module)[0]) == ["CACHE001"]
    plain_module = write_module(tmp_path, body, gate_scope=False)
    assert lint_invariants.lint_file(plain_module)[0] == []


def test_module_dict_cache_is_cache002(tmp_path):
    module = write_module(
        tmp_path,
        """
        _PROGRAM_CACHE = {}
        """,
        gate_scope=True,
    )
    assert rule_ids(lint_invariants.lint_file(module)[0]) == ["CACHE002"]


def test_hardcoded_complex128_is_dtype001(tmp_path):
    module = write_module(
        tmp_path,
        """
        import numpy as np

        def widen(state):
            return np.asarray(state, dtype=np.complex128)
        """,
        gate_scope=True,
    )
    assert rule_ids(lint_invariants.lint_file(module)[0]) == ["DTYPE001"]


def test_wall_clock_is_time001(tmp_path):
    module = write_module(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()
        """,
    )
    assert rule_ids(lint_invariants.lint_file(module)[0]) == ["TIME001"]


# -- pragma handling ----------------------------------------------------------------


def test_pragma_suppresses_and_is_counted(tmp_path):
    module = write_module(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()  # lint: allow(TIME001)
        """,
    )
    violations, suppressed = lint_invariants.lint_file(module)
    assert violations == []
    assert [(line, rule) for _, line, rule in suppressed] == [(5, "TIME001")]


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    module = write_module(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()  # lint: allow(RNG001)
        """,
    )
    violations, _ = lint_invariants.lint_file(module)
    assert rule_ids(violations) == ["TIME001"]


# -- CLI / driver exit codes --------------------------------------------------------


def test_linter_cli_exits_nonzero_on_violation(tmp_path, capsys):
    module = write_module(
        tmp_path,
        """
        import numpy as np

        VALUES = np.random.rand(3)
        """,
    )
    assert lint_invariants.main([str(module), "--no-readme-check"]) == 1
    assert "RNG001" in capsys.readouterr().out


def test_linter_cli_exits_zero_on_clean_file(tmp_path, capsys):
    module = write_module(tmp_path, "X = 1\n")
    assert lint_invariants.main([str(module), "--no-readme-check"]) == 0


def test_analyze_driver_exits_nonzero_on_seeded_lint_violation(tmp_path):
    module = write_module(
        tmp_path,
        """
        import numpy as np

        VALUES = np.random.rand(3)
        """,
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "tools" / "analyze.py"),
            str(module),
            "--no-readme-check",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode != 0
    assert "RNG001" in proc.stdout


# -- the repo invariant itself ------------------------------------------------------


def test_src_repro_lints_clean_with_bounded_pragmas():
    violations, suppressed = lint_invariants.lint()
    assert violations == [], [
        f"{lint_invariants._relative(p)}:{line}: {rule} {msg}"
        for p, line, rule, msg in violations
    ]
    assert len(suppressed) <= MAX_PRAGMAS, suppressed


def test_readme_documents_every_gate_backend_knob():
    violations, _ = lint_invariants.lint([lint_invariants.GATE_BACKEND])
    assert [rule for _, _, rule, _ in violations if rule == "KNOB001"] == []
