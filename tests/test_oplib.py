"""Tests for the algorithmic libraries (descriptor constructors)."""

import math

import numpy as np
import pytest

from repro.core import CompatibilityError, DescriptorError, integer_register, ising_register, phase_register
from repro.oplib import (
    adder_operator,
    bind_parameters,
    bind_qaoa_parameters,
    comparator_operator,
    compose,
    controlled_operator,
    controlled_phase_operator,
    cswap_operator,
    estimate_cost,
    invert,
    ising_problem_from_graph,
    ising_problem_operator,
    measurement,
    mixer_layer,
    modular_adder_operator,
    modular_multiplier_operator,
    multiplexer_operator,
    prep_amplitude,
    prep_angle,
    prep_basis_state,
    prep_uniform,
    qaoa_parameter_names,
    qaoa_sequence,
    qft_operator,
    qpe_operator,
    qubo_problem_operator,
    swap_test_operator,
    unbound_parameters,
)
from repro.problems import cycle_graph


# -- QFT ------------------------------------------------------------------------

def test_qft_descriptor_matches_listing3(reg_phase10):
    op = qft_operator(reg_phase10)
    assert op.rep_kind == "QFT_TEMPLATE"
    assert op.params == {"approx_degree": 0, "do_swaps": True, "inverse": False}
    # Listing 3 quotes roughly 45 two-qubit gates and depth near 100 for width 10.
    assert op.cost_hint.twoq == 45 + 3 * 5  # controlled phases + swap decomposition
    assert 90 <= op.cost_hint.depth <= 110
    assert op.result_schema.num_clbits == 10


def test_qft_approximation_reduces_cost(reg_phase10):
    exact = qft_operator(reg_phase10, approx_degree=0, do_swaps=False)
    approx = qft_operator(reg_phase10, approx_degree=3, do_swaps=False)
    assert approx.cost_hint.twoq < exact.cost_hint.twoq
    with pytest.raises(ValueError):
        qft_operator(reg_phase10, approx_degree=10)


def test_inverse_qft(reg_phase10):
    from repro.oplib import inverse_qft_operator

    op = inverse_qft_operator(reg_phase10)
    assert op.params["inverse"] is True


# -- state preparation -----------------------------------------------------------

def test_prep_uniform_and_basis_state(ising_vars):
    uniform = prep_uniform(ising_vars)
    assert uniform.cost_hint.oneq == 4
    reg = integer_register("n", 3)
    basis = prep_basis_state(reg, 5)
    assert basis.params["bits"] == "101"
    with pytest.raises(DescriptorError):
        prep_basis_state(reg, 9)  # out of range for 3 bits


def test_prep_amplitude_validation():
    reg = integer_register("n", 2)
    op = prep_amplitude(reg, [1, 1, 1, 1], normalize=True)
    norms = [complex(re, im) for re, im in op.params["amplitudes"]]
    assert abs(sum(abs(a) ** 2 for a in norms) - 1.0) < 1e-9
    with pytest.raises(DescriptorError):
        prep_amplitude(reg, [1, 0, 0])  # wrong length
    with pytest.raises(DescriptorError):
        prep_amplitude(reg, [0, 0, 0, 0])
    with pytest.raises(DescriptorError):
        prep_amplitude(reg, [0.9, 0, 0, 0], normalize=False)


def test_prep_angle_validation(ising_vars):
    op = prep_angle(ising_vars, [0.1, 0.2, 0.3, 0.4])
    assert op.params["angles"] == [0.1, 0.2, 0.3, 0.4]
    with pytest.raises(DescriptorError):
        prep_angle(ising_vars, [0.1])


# -- Ising / QUBO -----------------------------------------------------------------

def test_ising_problem_from_edges(ising_vars):
    op = ising_problem_operator(ising_vars, edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
    assert op.rep_kind == "ISING_PROBLEM"
    assert op.params["h"] == [0.0] * 4
    assert len(op.params["edges"]) == 4
    J = np.array(op.params["J"])
    assert J[0, 1] == 1.0 and J[2, 3] == 1.0
    assert op.cost_hint.variables == 4 and op.cost_hint.couplers == 4


def test_ising_problem_from_symmetric_matrix(ising_vars):
    J = np.zeros((4, 4))
    for i, j in [(0, 1), (1, 2), (2, 3), (0, 3)]:
        J[i, j] = J[j, i] = 1.0
    op = ising_problem_operator(ising_vars, J=J.tolist())
    assert sorted(tuple(e) for e in op.params["edges"]) == [(0, 1), (0, 3), (1, 2), (2, 3)]
    assert all(w == 1.0 for w in op.params["weights"])


def test_ising_problem_from_graph(ising_vars):
    op = ising_problem_from_graph(ising_vars, cycle_graph(4))
    assert len(op.params["edges"]) == 4


def test_ising_problem_validation(ising_vars):
    with pytest.raises(DescriptorError):
        ising_problem_operator(ising_vars)  # neither J nor edges
    with pytest.raises(DescriptorError):
        ising_problem_operator(ising_vars, edges=[(0, 9)])
    with pytest.raises(DescriptorError):
        ising_problem_operator(ising_vars, edges=[(0, 1)], h=[0.0])


def test_qubo_problem(ising_vars):
    op = qubo_problem_operator(ising_vars, {(0, 0): -1.0, (0, 1): 2.0})
    assert op.rep_kind == "QUBO_PROBLEM"
    Q = np.array(op.params["Q"])
    assert Q[0, 0] == -1.0 and Q[0, 1] == 2.0


# -- QAOA ---------------------------------------------------------------------------

def test_qaoa_sequence_structure(ising_vars, cycle4):
    seq = qaoa_sequence(ising_vars, cycle4.edges, gammas=[0.1, 0.2], betas=[0.3, 0.4])
    kinds = [op.rep_kind for op in seq]
    assert kinds == [
        "PREP_UNIFORM",
        "ISING_COST_PHASE", "MIXER_RX",
        "ISING_COST_PHASE", "MIXER_RX",
        "MEASUREMENT",
    ]
    assert seq[1].params["gamma"] == 0.1 and seq[3].params["gamma"] == 0.2
    assert seq.measurements()[0].result_schema is not None


def test_qaoa_late_binding(ising_vars, cycle4):
    seq = qaoa_sequence(ising_vars, cycle4.edges, reps=2)
    assert qaoa_parameter_names(seq) == ["gamma_0", "beta_0", "gamma_1", "beta_1"]
    assert unbound_parameters(seq)
    bound = bind_qaoa_parameters(seq, [0.1, 0.2], [0.3, 0.4])
    assert not unbound_parameters(bound)
    assert bound[1].params["gamma"] == 0.1
    with pytest.raises(DescriptorError):
        bind_qaoa_parameters(seq, [0.1], [0.3, 0.4])


def test_qaoa_argument_validation(ising_vars, cycle4):
    with pytest.raises(DescriptorError):
        qaoa_sequence(ising_vars, cycle4.edges, gammas=[0.1], betas=[0.1, 0.2])
    with pytest.raises(DescriptorError):
        qaoa_sequence(ising_vars, cycle4.edges, reps=0)
    # Unbound layers are allowed at construction time (late binding)...
    assert "beta" not in mixer_layer(ising_vars, beta=None).params
    # ...and binding by operator name through the generic helper also works.
    seq = qaoa_sequence(ising_vars, cycle4.edges, reps=1)
    bound = bind_parameters(
        seq, {"cost_layer_0": {"gamma": 0.5}, "mixer_layer_0": {"beta": 0.25}}
    )
    assert bound[1].params["gamma"] == 0.5


# -- arithmetic -----------------------------------------------------------------------

def test_arithmetic_constructors():
    reg = integer_register("n", 4)
    add = adder_operator(reg, 5)
    assert add.params["addend"] == 5 and add.cost_hint.twoq > 0
    mod_add = modular_adder_operator(reg, 3, 7)
    assert mod_add.params["modulus"] == 7
    mod_mult = modular_multiplier_operator(reg, 3, 7)
    assert mod_mult.params["multiplier"] == 3
    flag = ising_register("flag", 1)
    comp = comparator_operator(reg, flag, 6)
    assert comp.params["threshold"] == 6


def test_arithmetic_validation(ising_vars):
    reg = integer_register("n", 3)
    with pytest.raises(DescriptorError):
        adder_operator(ising_vars, 2)  # not integer-like
    with pytest.raises(DescriptorError):
        modular_adder_operator(reg, 1, 20)  # modulus too large
    with pytest.raises(DescriptorError):
        modular_multiplier_operator(reg, 2, 4)  # not coprime
    with pytest.raises(DescriptorError):
        comparator_operator(reg, integer_register("flag", 2), 1)


# -- boolean / phase ----------------------------------------------------------------------

def test_boolean_constructors(ising_vars):
    control = ising_register("ctrl", 1)
    mixer = mixer_layer(ising_vars, beta=0.2)
    controlled = controlled_operator(control, mixer, [ising_vars])
    assert controlled.params["target_rep_kind"] == "MIXER_RX"
    a, b = ising_register("ra", 2), ising_register("rb", 2)
    cswap = cswap_operator(control, a, b)
    assert cswap.rep_kind == "CSWAP_TEMPLATE"
    mux = multiplexer_operator(integer_register("sel", 1), {0: mixer, 1: mixer}, [ising_vars])
    assert "cases" in mux.params
    with pytest.raises(DescriptorError):
        controlled_operator(control, measurement(ising_vars), [ising_vars])
    with pytest.raises(DescriptorError):
        cswap_operator(control, a, ising_register("rc", 3))


def test_phase_constructors(reg_phase10):
    target = integer_register("t", 1)
    cp = controlled_phase_operator(reg_phase10, target, math.pi / 4, control_index=2)
    assert cp.params["control"] == "reg_phase[2]"
    ancilla = ising_register("anc", 1)
    a, b = integer_register("a", 2), integer_register("b", 2)
    st = swap_test_operator(a, b, ancilla)
    assert st.result_schema is not None and st.info.measures
    qpe = qpe_operator(reg_phase10, target, cp)
    assert qpe.params["unitary"]["rep_kind"] == "CONTROLLED_PHASE"
    with pytest.raises(DescriptorError):
        qpe_operator(integer_register("x", 2), target, cp)


# -- composition ------------------------------------------------------------------------------

def test_compose_and_invert(reg_phase10, ising_vars):
    seq = compose(
        prep_uniform(ising_vars),
        qft_operator(reg_phase10),
        measurement(ising_vars),
        qdts={"ising_vars": ising_vars, "reg_phase": reg_phase10},
    )
    assert len(seq) == 3
    with pytest.raises(CompatibilityError):
        compose(measurement(ising_vars), prep_uniform(ising_vars))
    unitary_only = compose(prep_uniform(ising_vars), qft_operator(reg_phase10))
    inverted = invert(unitary_only)
    assert [op.rep_kind for op in inverted] == ["QFT_TEMPLATE", "PREP_UNIFORM"]


def test_estimate_cost_unknown_kind(ising_vars):
    from repro.core import QuantumOperatorDescriptor

    op = QuantumOperatorDescriptor(name="x", rep_kind="TOTALLY_NEW", domain_qdt=ising_vars.id)
    assert estimate_cost(op, {ising_vars.id: ising_vars}) is None
