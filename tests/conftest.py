"""Shared fixtures for the test suite."""

import pytest

from repro.core import (
    AnnealPolicy,
    ContextDescriptor,
    ExecPolicy,
    TargetSpec,
    ising_register,
    phase_register,
)
from repro.problems import MaxCutProblem


@pytest.fixture
def cycle4():
    """The paper's proof-of-concept Max-Cut instance."""
    return MaxCutProblem.cycle(4)


@pytest.fixture
def ising_vars():
    """The shared ISING_SPIN register of the proof of concept."""
    return ising_register("ising_vars", 4, name="s")


@pytest.fixture
def reg_phase10():
    """The width-10 phase register of Listing 2."""
    return phase_register("reg_phase", 10, name="phase", phase_scale="1/1024")


@pytest.fixture
def gate_context():
    """A small, fast gate execution context (unconstrained target)."""
    return ContextDescriptor(
        exec=ExecPolicy(engine="gate.aer_simulator", samples=2048, seed=7)
    )


@pytest.fixture
def ring_gate_context():
    """The Fig. 2 context: ring coupling map, {sx, rz, cx} basis, level 2."""
    return ContextDescriptor(
        exec=ExecPolicy(
            engine="gate.aer_simulator",
            samples=2048,
            seed=7,
            target=TargetSpec(
                basis_gates=["sx", "rz", "cx"],
                coupling_map=[(0, 1), (1, 2), (2, 3), (3, 0)],
            ),
            options={"optimization_level": 2},
        )
    )


@pytest.fixture
def anneal_context():
    """The Fig. 3 context: simulated annealer, 1000 reads."""
    return ContextDescriptor(
        exec=ExecPolicy(engine="anneal.simulated_annealer", samples=1000, seed=7),
        anneal=AnnealPolicy(num_reads=500, num_sweeps=300, seed=7),
    )
