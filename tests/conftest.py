"""Shared fixtures for the test suite."""

import pytest

from repro.simulators.gate import analysis

from repro.core import (
    AnnealPolicy,
    ContextDescriptor,
    ExecPolicy,
    TargetSpec,
    ising_register,
    phase_register,
)
from repro.problems import MaxCutProblem


@pytest.fixture(scope="session", autouse=True)
def verify_each_compile():
    """Verify every compiled artifact produced anywhere in the test session.

    Installs the IR-verifier hooks (``repro.simulators.gate.analysis``) for the
    whole session: every fusion template, bound trajectory program and
    transpiler stage output compiled by any test is checked against the IR/TR
    rule catalog at the moment it is produced, so a compiler regression fails
    loudly at its source instead of as a downstream statistics mismatch.
    Production keeps the hooks off; this fixture is the test-only "verify
    each" switch.
    """
    analysis.set_verify_each(True)
    try:
        yield
    finally:
        analysis.set_verify_each(False)


@pytest.fixture
def cycle4():
    """The paper's proof-of-concept Max-Cut instance."""
    return MaxCutProblem.cycle(4)


@pytest.fixture
def ising_vars():
    """The shared ISING_SPIN register of the proof of concept."""
    return ising_register("ising_vars", 4, name="s")


@pytest.fixture
def reg_phase10():
    """The width-10 phase register of Listing 2."""
    return phase_register("reg_phase", 10, name="phase", phase_scale="1/1024")


@pytest.fixture
def gate_context():
    """A small, fast gate execution context (unconstrained target)."""
    return ContextDescriptor(
        exec=ExecPolicy(engine="gate.aer_simulator", samples=2048, seed=7)
    )


@pytest.fixture
def ring_gate_context():
    """The Fig. 2 context: ring coupling map, {sx, rz, cx} basis, level 2."""
    return ContextDescriptor(
        exec=ExecPolicy(
            engine="gate.aer_simulator",
            samples=2048,
            seed=7,
            target=TargetSpec(
                basis_gates=["sx", "rz", "cx"],
                coupling_map=[(0, 1), (1, 2), (2, 3), (3, 0)],
            ),
            options={"optimization_level": 2},
        )
    )


@pytest.fixture
def anneal_context():
    """The Fig. 3 context: simulated annealer, 1000 reads."""
    return ContextDescriptor(
        exec=ExecPolicy(engine="anneal.simulated_annealer", samples=1000, seed=7),
        anneal=AnnealPolicy(num_reads=500, num_sweeps=300, seed=7),
    )
