"""Tests for the gate library and the circuit IR."""

import math

import numpy as np
import pytest

from repro.core import SimulationError
from repro.simulators.gate import Circuit, gate_matrix, get_gate, has_gate, list_gates
from repro.simulators.gate.gates import inverse_gate


def test_gate_library_contents():
    for name in ("h", "x", "cx", "sx", "rz", "cp", "swap", "ccx", "cswap", "rzz"):
        assert has_gate(name)
    assert not has_gate("warp_drive")
    assert len(list_gates()) >= 30


def test_gate_matrices_are_unitary():
    rng = np.random.default_rng(3)
    for name in list_gates():
        definition = get_gate(name)
        params = rng.uniform(0.1, 2.0, size=definition.num_params)
        matrix = definition.matrix(*params)
        dim = 2 ** definition.num_qubits
        assert matrix.shape == (dim, dim)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-12)


def test_cx_matrix_convention():
    # First argument (control) is the most significant bit of the matrix index.
    cx = gate_matrix("cx")
    expected = np.array([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]])
    assert np.allclose(cx, expected)


def test_parametric_gate_identities():
    assert np.allclose(gate_matrix("rx", [0.0]), np.eye(2))
    assert np.allclose(gate_matrix("rz", [2 * math.pi]), -np.eye(2))
    assert np.allclose(gate_matrix("p", [math.pi]), np.diag([1, -1]))
    # sx squared equals X (up to global phase it IS equal)
    assert np.allclose(gate_matrix("sx") @ gate_matrix("sx"), gate_matrix("x"))


def test_wrong_param_count_rejected():
    with pytest.raises(SimulationError):
        gate_matrix("rx", [])
    with pytest.raises(SimulationError):
        gate_matrix("h", [0.1])


def test_inverse_gate_lookup():
    assert inverse_gate("h", ()) == ("h", ())
    assert inverse_gate("s", ()) == ("sdg", ())
    assert inverse_gate("rx", (0.5,)) == ("rx", (-0.5,))
    assert inverse_gate("u", (1.0, 2.0, 3.0)) == ("u", (-1.0, -3.0, -2.0))
    name, params = inverse_gate("cp", (0.7,))
    assert name == "cp" and params == (-0.7,)


def test_circuit_builder_and_counts():
    circuit = Circuit(3, 3, name="demo")
    circuit.h(0).cx(0, 1).rz(0.3, 2).measure_all()
    assert len(circuit) == 6
    ops = circuit.count_ops()
    assert ops == {"h": 1, "cx": 1, "rz": 1, "measure": 3}
    assert circuit.num_gates() == 3
    assert circuit.num_twoq_gates() == 1
    assert circuit.has_measurements()
    assert circuit.measurements_are_terminal()
    assert circuit.measurement_map() == {0: 0, 1: 1, 2: 2}


def test_circuit_depth():
    circuit = Circuit(2)
    circuit.h(0).h(1)  # parallel -> depth 1
    assert circuit.depth() == 1
    circuit.cx(0, 1)
    assert circuit.depth() == 2
    circuit.h(0)
    assert circuit.depth() == 3


def test_circuit_validation_errors():
    circuit = Circuit(2, 1)
    with pytest.raises(SimulationError):
        circuit.h(5)
    with pytest.raises(SimulationError):
        circuit.cx(0, 0)
    with pytest.raises(SimulationError):
        circuit.append("rx", [0], [])  # missing parameter
    with pytest.raises(SimulationError):
        circuit.measure(0, 3)
    with pytest.raises(SimulationError):
        Circuit(0)


def test_non_terminal_measurement_detected():
    circuit = Circuit(1, 1)
    circuit.measure(0, 0)
    circuit.x(0)
    assert not circuit.measurements_are_terminal()


def test_compose_with_mapping():
    inner = Circuit(2)
    inner.h(0).cx(0, 1)
    outer = Circuit(3)
    outer.compose(inner, qubit_map=[2, 0])
    names = [(inst.name, inst.qubits) for inst in outer]
    assert names == [("h", (2,)), ("cx", (2, 0))]


def test_inverse_circuit():
    circuit = Circuit(2)
    circuit.h(0).s(1).cx(0, 1).rz(0.4, 1)
    inv = circuit.inverse()
    names = [(inst.name, inst.params) for inst in inv]
    assert names == [("rz", (-0.4,)), ("cx", ()), ("sdg", ()), ("h", ())]
    measured = Circuit(1, 1)
    measured.measure(0, 0)
    with pytest.raises(SimulationError):
        measured.inverse()


def test_remapped():
    circuit = Circuit(2, 1)
    circuit.cx(0, 1).measure(1, 0)
    remapped = circuit.remapped([3, 1], num_qubits=4)
    assert remapped.instructions[0].qubits == (3, 1)
    assert remapped.instructions[1].qubits == (1,)


def test_circuit_dict_round_trip():
    circuit = Circuit(2, 2)
    circuit.h(0).cp(0.3, 0, 1).measure_all()
    rebuilt = Circuit.from_dict(circuit.to_dict())
    assert rebuilt.to_dict() == circuit.to_dict()
