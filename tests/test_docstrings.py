"""Docstring lint as part of the verify path.

The container has no ``pydocstyle``, so ``tools/lint_docstrings.py``
implements the equivalent subset (missing module/class/function docstrings,
empty or unterminated summary lines) over the public API surface of
``src/repro/simulators/gate`` and ``src/repro/backends``.  Running it from
pytest keeps the tier-1 verify command the only gate a PR needs.
"""

import importlib.util
import sys
from pathlib import Path

TOOL = Path(__file__).resolve().parent.parent / "tools" / "lint_docstrings.py"


def load_linter():
    """Import ``tools/lint_docstrings.py`` as a module (tools/ is no package)."""
    spec = importlib.util.spec_from_file_location("lint_docstrings", TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_docstring_lint_clean():
    linter = load_linter()
    violations = linter.lint()
    formatted = "\n".join(
        f"{path}:{lineno}: {code} {message}"
        for path, lineno, code, message in violations
    )
    assert not violations, f"docstring lint violations:\n{formatted}"


def test_linter_flags_missing_and_malformed(tmp_path):
    """The linter itself must catch what it claims to catch."""
    bad = tmp_path / "bad.py"
    bad.write_text(
        '"""Module summary without terminator"""\n'
        "def public():\n"
        "    pass\n"
        "class Thing:\n"
        "    def method(self):\n"
        "        pass\n"
        "    def _private(self):\n"
        "        pass\n"
    )
    linter = load_linter()
    violations = linter.lint(scopes=[tmp_path])
    codes = sorted(code for _, _, code, _ in violations)
    assert codes == ["DOC101", "DOC102", "DOC102", "DOC201"]
