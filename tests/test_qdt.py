"""Tests for quantum data type descriptors."""

from fractions import Fraction

import pytest

from repro.core import (
    BitOrder,
    DescriptorError,
    EncodingKind,
    MeasurementSemantics,
    QuantumDataType,
    boolean_register,
    fixed_point_register,
    integer_register,
    ising_register,
    phase_register,
)


def test_listing2_round_trip(reg_phase10):
    doc = reg_phase10.to_dict()
    assert doc["$schema"] == "qdt-core.schema.json"
    assert doc["width"] == 10
    assert doc["encoding_kind"] == "PHASE_REGISTER"
    assert doc["bit_order"] == "LSB_0"
    assert doc["measurement_semantics"] == "AS_PHASE"
    assert doc["phase_scale"] == "1/1024"
    rebuilt = QuantumDataType.from_dict(doc)
    assert rebuilt.compatible_with(reg_phase10)
    assert rebuilt.phase_scale == Fraction(1, 1024)


def test_invalid_width_rejected():
    with pytest.raises(DescriptorError):
        QuantumDataType(id="r", width=0, encoding_kind="BOOL_REGISTER",
                        measurement_semantics="AS_BOOL")


def test_lsb0_int_decoding():
    reg = integer_register("r", 4)
    assert reg.decode_bits("1000") == 1
    assert reg.decode_bits("0001") == 8
    assert reg.decode_bits("1010") == 5
    assert reg.encode_value(5) == "1010"


def test_msb0_int_decoding():
    reg = integer_register("r", 4, bit_order="MSB_0")
    assert reg.decode_bits("1000") == 8
    assert reg.decode_bits("0001") == 1
    assert reg.encode_value(8) == "1000"


def test_signed_integer_two_complement():
    reg = integer_register("r", 4, signed=True)
    assert reg.decode_bits("1111") == -1
    assert reg.decode_bits("0111") == -2  # LSB_0: index 14 -> -2
    assert reg.encode_value(-1) == "1111"
    with pytest.raises(DescriptorError):
        integer_register("r", 4, signed=False).encode_value(-1)


def test_boolean_and_spin_decoding():
    boolreg = boolean_register("b", 3)
    assert boolreg.decode_bits("101") == (1, 0, 1)
    assert boolreg.encode_value((1, 0, 1)) == "101"
    spinreg = ising_register("s", 3, measurement_semantics="AS_SPIN")
    assert spinreg.decode_bits("101") == (-1, 1, -1)
    assert spinreg.encode_value((-1, 1, -1)) == "101"


def test_phase_decoding_and_encoding(reg_phase10):
    assert reg_phase10.decode_bits("0000000000") == Fraction(0)
    # carrier 0 has weight 1 -> 1/1024 of a turn
    assert reg_phase10.decode_bits("1000000000") == Fraction(1, 1024)
    assert reg_phase10.encode_value(Fraction(3, 8)) == "0000000110"
    with pytest.raises(DescriptorError):
        reg_phase10.encode_value(Fraction(1, 3))  # not a multiple of 1/1024


def test_fixed_point_register():
    reg = fixed_point_register("f", 4, fraction_bits=2)
    assert reg.decode_bits("0100") == 0.5  # index 2 / 4
    assert reg.encode_value(0.75) == "1100"


def test_bits_index_round_trip():
    reg = integer_register("r", 5)
    for index in range(reg.num_states):
        assert reg.bits_to_index(reg.index_to_bits(index)) == index


def test_all_values_enumeration():
    reg = integer_register("r", 3)
    assert reg.all_values() == (0, 1, 2, 3, 4, 5, 6, 7)


def test_bad_bitstring_rejected():
    reg = integer_register("r", 3)
    with pytest.raises(DescriptorError):
        reg.decode_bits("01")
    with pytest.raises(DescriptorError):
        reg.decode_bits("01x")


def test_compatibility():
    a = ising_register("a", 4)
    b = ising_register("b", 4)
    c = ising_register("c", 5)
    assert a.compatible_with(b)
    assert not a.compatible_with(c)
    assert not a.compatible_with(boolean_register("d", 4))


def test_default_phase_scale():
    reg = phase_register("p", 3)
    assert reg.phase_scale == Fraction(1, 8)


def test_save_and_load(tmp_path, reg_phase10):
    path = tmp_path / "QDT.json"
    reg_phase10.save(path)
    loaded = QuantumDataType.load(path)
    assert loaded.to_dict() == reg_phase10.to_dict()


def test_schema_validation_rejects_unknown_encoding():
    doc = {
        "$schema": "qdt-core.schema.json",
        "id": "r",
        "width": 2,
        "encoding_kind": "MYSTERY",
        "bit_order": "LSB_0",
        "measurement_semantics": "AS_BOOL",
    }
    with pytest.raises(Exception):
        QuantumDataType.from_dict(doc)
