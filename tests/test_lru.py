"""Regression tests for the shared compile-cache LRU.

The load-bearing fix here: ``lookup`` used to treat any falsy stored value
(``None``, ``0``, ``""``) as a miss, because absence was signalled by the
``dict.get`` default.  Compile caches that legitimately store such values
(e.g. a memoised "no stabilizer program possible" marker) then recompiled on
every call while reporting a 0% hit rate.  Absence is now detected with a
private sentinel, so falsy values hit like any other value.
"""

import pytest

from repro.simulators.gate.lru import DEFAULT_CACHE_SIZE, BoundedLRU


@pytest.mark.parametrize("value", [None, 0, "", False, (), 0.0])
def test_falsy_values_count_as_hits(value):
    cache = BoundedLRU(maxsize=4)
    cache.store("k", value)
    assert cache.lookup("k") == value
    info = cache.info()
    assert info["hits"] == 1
    assert info["misses"] == 0


def test_absent_key_is_a_miss():
    cache = BoundedLRU(maxsize=4)
    assert cache.lookup("absent") is None
    info = cache.info()
    assert info["hits"] == 0
    assert info["misses"] == 1


def test_none_hit_is_indistinguishable_from_miss_only_by_counters():
    # lookup() still returns None for a stored None -- callers that must
    # distinguish use `key in cache`, which does not perturb the counters.
    cache = BoundedLRU(maxsize=4)
    cache.store("k", None)
    assert "k" in cache
    assert "absent" not in cache
    info = cache.info()
    assert info["hits"] == 0
    assert info["misses"] == 0


def test_falsy_values_participate_in_lru_order():
    cache = BoundedLRU(maxsize=2)
    cache.store("a", 0)
    cache.store("b", 1)
    assert cache.lookup("a") == 0  # refresh "a": "b" is now oldest
    cache.store("c", 2)
    assert "b" not in cache
    assert cache.lookup("a") == 0
    assert cache.lookup("c") == 2


def test_clear_resets_counters_and_default_size():
    cache = BoundedLRU()
    assert cache.info()["maxsize"] == DEFAULT_CACHE_SIZE
    cache.store("k", "")
    cache.lookup("k")
    cache.lookup("gone")
    cache.clear()
    assert cache.info() == {
        "hits": 0,
        "misses": 0,
        "entries": 0,
        "maxsize": DEFAULT_CACHE_SIZE,
    }
