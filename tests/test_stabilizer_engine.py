"""Property tests for the stabilizer tableau engine (ISSUE 7 tentpole).

Covers the tableau invariants (symplectic form preserved by every gate /
measure / reset), the Aaronson–Gottesman measurement contract (probabilities
are exactly 0, 1/2 or 1; repeated measurement is idempotent), the Clifford
compile path and its typed ``UnsupportedGateError``, engine routing
(``"auto"`` selection, registry resolution, backend fallback behaviour), the
seeded chunk-stream determinism guarantees, and the IR009/IR010 verifier
rules on hand-built broken programs.
"""

import numpy as np
import pytest

from repro.core.errors import SimulationError, UnsupportedGateError
from repro.simulators.gate import (
    Circuit,
    DensityMatrixSimulator,
    NoiseModel,
    StabilizerTableau,
    StatevectorSimulator,
    clear_compile_caches,
    compile_cache_info,
    compile_stabilizer_program,
    is_clifford_circuit,
    verify_stabilizer_program,
)
from repro.simulators.gate.fusion import (
    CliffordStep,
    PauliChannelStep,
    StabilizerProgram,
    TerminalSample,
)

from engine_testlib import random_clifford_circuit, total_variation_distance


# -- tableau invariants -------------------------------------------------------------


def test_symplectic_invariant_after_every_gate_measure_reset():
    # Walk a seeded random Clifford circuit gate by gate on a small batch and
    # check the binary symplectic form survives every single update,
    # including the rowsum-heavy measurement and reset paths.
    rng = np.random.default_rng(5)
    circuit = random_clifford_circuit(rng, 4, 30, measure=False)
    program = compile_stabilizer_program(circuit)
    tableau = StabilizerTableau(4, batch_size=3)
    assert tableau.is_symplectic()
    for step in program.steps:
        assert isinstance(step, CliffordStep)
        tableau.apply_gate(step.name, step.qubits)
        assert tableau.is_symplectic(), step
    for qubit in range(4):
        tableau.measure(qubit, np.random.default_rng(qubit))
        assert tableau.is_symplectic(), ("measure", qubit)
        tableau.reset(qubit, np.random.default_rng(qubit + 10))
        assert tableau.is_symplectic(), ("reset", qubit)


def test_measurement_probabilities_are_exactly_zero_half_or_one():
    tableau = StabilizerTableau(2, batch_size=4)
    probabilities = tableau.measurement_probabilities(0)
    assert np.all(probabilities == 0.0)  # |00>: P(1) = 0 exactly
    tableau.apply_gate("h", (0,))
    assert np.all(tableau.measurement_probabilities(0) == 0.5)
    tableau.apply_gate("cx", (0, 1))
    assert np.all(tableau.measurement_probabilities(1) == 0.5)
    tableau.apply_gate("x", (0,))
    # Still the (phase-flipped) Bell pair: marginals stay exactly 1/2.
    assert np.all(tableau.measurement_probabilities(0) == 0.5)
    deterministic = StabilizerTableau(1, batch_size=2)
    deterministic.apply_gate("x", (0,))
    assert np.all(deterministic.measurement_probabilities(0) == 1.0)


def test_repeated_measurement_is_idempotent():
    # After a random measurement collapses the state, re-measuring the same
    # qubit is deterministic: identical outcomes, no further RNG consumption.
    tableau = StabilizerTableau(3, batch_size=64)
    tableau.apply_gate("h", (0,))
    tableau.apply_gate("cx", (0, 1))
    tableau.apply_gate("cx", (1, 2))
    rng = np.random.default_rng(2)
    first = tableau.measure(0, rng)
    state_before = rng.bit_generator.state
    again = tableau.measure(0, rng)
    assert np.array_equal(first, again)
    assert rng.bit_generator.state == state_before  # deterministic: no draws
    # GHZ correlations survive the collapse: all three qubits agree.
    assert np.array_equal(tableau.measure(1, rng), first)
    assert np.array_equal(tableau.measure(2, rng), first)


def test_reset_forces_zero_regardless_of_prior_state():
    tableau = StabilizerTableau(2, batch_size=32)
    tableau.apply_gate("x", (0,))
    tableau.apply_gate("h", (1,))
    rng = np.random.default_rng(9)
    tableau.reset(0, rng)
    tableau.reset(1, rng)
    assert np.all(tableau.measurement_probabilities(0) == 0.0)
    assert np.all(tableau.measurement_probabilities(1) == 0.0)


def test_pauli_noise_on_ghz_matches_density_oracle_marginals():
    # Satellite: the Pauli-channel lowering of depolarizing noise must
    # reproduce the density oracle's distribution on a noisy GHZ state at
    # widths the oracle can reach.
    for width in (3, 6, 10):
        circuit = Circuit(width, width)
        circuit.h(0)
        for q in range(width - 1):
            circuit.cx(q, q + 1)
        circuit.measure_all()
        noise = NoiseModel(oneq_error=0.03, twoq_error=0.05)
        exact = DensityMatrixSimulator(noise_model=noise).probabilities(circuit)
        counts = StatevectorSimulator(
            noise_model=noise, trajectory_engine="stabilizer"
        ).run(circuit, shots=4096, seed=3).counts
        shots = sum(counts.values())
        bound = 5.0 * np.sqrt(max(len(exact), 2) / (2 * np.pi * shots))
        assert total_variation_distance(counts, exact) < bound, width


# -- Clifford classification + typed errors -----------------------------------------


def test_is_clifford_circuit_classification():
    clifford = Circuit(2, 2)
    clifford.h(0).cx(0, 1).s(1).measure_all()
    assert is_clifford_circuit(clifford)
    parametric = Circuit(1, 1)
    parametric.rx(0.3, 0)
    assert not is_clifford_circuit(parametric)
    non_clifford = Circuit(1, 1)
    non_clifford.t(0)
    assert not is_clifford_circuit(non_clifford)


def test_non_clifford_gate_raises_typed_error_with_gate_and_index():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1).t(1).measure_all()
    with pytest.raises(UnsupportedGateError) as excinfo:
        compile_stabilizer_program(circuit)
    assert excinfo.value.gate == "t"
    assert excinfo.value.index == 2
    assert isinstance(excinfo.value, SimulationError)
    assert not isinstance(excinfo.value, (ValueError, KeyError))


def test_parametric_gate_raises_typed_error():
    circuit = Circuit(1, 1)
    circuit.h(0)
    circuit.rz(0.7, 0)
    with pytest.raises(UnsupportedGateError) as excinfo:
        compile_stabilizer_program(circuit)
    assert excinfo.value.gate == "rz"
    assert excinfo.value.index == 1


def test_simulator_raises_typed_error_for_non_clifford_under_stabilizer():
    circuit = Circuit(1, 1)
    circuit.t(0)
    circuit.measure_all()
    simulator = StatevectorSimulator(trajectory_engine="stabilizer")
    with pytest.raises(UnsupportedGateError):
        simulator.run(circuit, shots=16, seed=1)


# -- engine routing ----------------------------------------------------------------


def test_auto_engine_selects_stabilizer_for_clifford_circuits():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1).measure_all()
    noise = NoiseModel(oneq_error=0.02)
    result = StatevectorSimulator(noise_model=noise, trajectory_engine="auto").run(
        circuit, shots=64, seed=1
    )
    assert result.metadata["trajectory_engine"] == "stabilizer"
    assert result.statevector is None
    assert result.metadata["statevector_kind"] == "none"


def test_auto_engine_falls_back_to_batched_for_non_clifford():
    circuit = Circuit(1, 1)
    circuit.t(0)
    circuit.measure_all()
    noise = NoiseModel(oneq_error=0.02)
    result = StatevectorSimulator(noise_model=noise, trajectory_engine="auto").run(
        circuit, shots=64, seed=1
    )
    assert result.metadata["trajectory_engine"] == "batched"


def test_stabilizer_counts_are_worker_and_chunk_stream_deterministic():
    rng = np.random.default_rng(17)
    circuit = random_clifford_circuit(rng, 6, 24)
    noise = NoiseModel(oneq_error=0.02, twoq_error=0.04, readout_error=0.01)
    reference = None
    for workers in (1, 2, 4, 8):
        counts = StatevectorSimulator(
            noise_model=noise,
            trajectory_engine="stabilizer",
            trajectory_workers=workers,
            max_batch_memory=2048,
        ).run(circuit, shots=1024, seed=7).counts
        if reference is None:
            reference = dict(counts)
        assert dict(counts) == reference, workers


def test_stabilizer_runs_beyond_exact_engine_widths():
    width = 60
    circuit = Circuit(width, width)
    circuit.h(0)
    for q in range(width - 1):
        circuit.cx(q, q + 1)
    circuit.measure_all()
    result = StatevectorSimulator(trajectory_engine="stabilizer").run(
        circuit, shots=256, seed=5
    )
    keys = set(result.counts)
    assert keys == {"0" * width, "1" * width}
    assert result.statevector is None


def test_stabilizer_zero_shots_returns_empty_counts():
    circuit = Circuit(30, 30)
    circuit.h(0)
    circuit.measure_all()
    result = StatevectorSimulator(trajectory_engine="stabilizer").run(
        circuit, shots=0, seed=1
    )
    assert sum(result.counts.values()) == 0
    assert result.statevector is None


def test_compile_cache_info_has_stabilizer_section():
    clear_compile_caches()
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1).measure_all()
    StatevectorSimulator(trajectory_engine="stabilizer").run(circuit, shots=8, seed=1)
    info = compile_cache_info()
    assert "stabilizer" in info
    assert info["stabilizer"]["misses"] >= 1
    StatevectorSimulator(trajectory_engine="stabilizer").run(circuit, shots=8, seed=1)
    assert compile_cache_info()["stabilizer"]["hits"] >= 1


# -- IR verifier rules --------------------------------------------------------------


def _terminal(num_qubits):
    return TerminalSample(
        pairs=tuple((q, q) for q in range(num_qubits)), implicit=True
    )


def test_verifier_accepts_compiled_stabilizer_program():
    rng = np.random.default_rng(23)
    circuit = random_clifford_circuit(rng, 3, 12)
    noise = NoiseModel(oneq_error=0.05, twoq_error=0.1)
    program = compile_stabilizer_program(circuit, noise)
    report = verify_stabilizer_program(program)
    assert report.ok, report.to_dict()


def test_verifier_flags_unknown_primitive_as_ir009():
    program = StabilizerProgram(
        num_qubits=2,
        num_clbits=2,
        steps=(CliffordStep(name="toffoli", qubits=(0, 1)),),
        terminal=_terminal(2),
    )
    report = verify_stabilizer_program(program)
    assert not report.ok
    assert "IR009" in report.rule_ids


def test_verifier_flags_bad_pauli_channel_rate_as_ir009():
    for rate in (-0.1, 1.5, float("nan")):
        program = StabilizerProgram(
            num_qubits=1,
            num_clbits=1,
            steps=(PauliChannelStep(qubits=(0,), rate=rate),),
            terminal=_terminal(1),
        )
        report = verify_stabilizer_program(program)
        assert not report.ok, rate
        assert "IR009" in report.rule_ids, rate


def test_verifier_flags_wrong_operand_count_as_ir009():
    program = StabilizerProgram(
        num_qubits=2,
        num_clbits=2,
        steps=(CliffordStep(name="cx", qubits=(0,)),),
        terminal=_terminal(2),
    )
    report = verify_stabilizer_program(program)
    assert not report.ok
    assert "IR009" in report.rule_ids


def test_verifier_flags_out_of_range_qubit_as_ir001():
    program = StabilizerProgram(
        num_qubits=2,
        num_clbits=2,
        steps=(CliffordStep(name="h", qubits=(5,)),),
        terminal=_terminal(2),
    )
    report = verify_stabilizer_program(program)
    assert not report.ok
    assert "IR001" in report.rule_ids
