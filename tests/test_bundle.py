"""Tests for job bundles and the packaging utility."""

import pytest

from repro.core import (
    ContextDescriptor,
    ExecPolicy,
    JobBundle,
    PackagingError,
    package,
)
from repro.oplib import measurement, prep_uniform, qaoa_sequence
from repro.workflows import build_anneal_bundle, build_qaoa_bundle


def test_package_builds_valid_bundle(ising_vars, cycle4, gate_context):
    seq = qaoa_sequence(ising_vars, cycle4.edges, gammas=[0.1], betas=[0.2])
    bundle = package(ising_vars, seq, gate_context, name="poc", producer="tests")
    assert bundle.name == "poc"
    assert bundle.total_width == 4
    assert bundle.engine == "gate.aer_simulator"
    assert bundle.provenance is not None and bundle.provenance.inputs_digest
    assert bundle.verify().ok


def test_job_json_round_trip(ising_vars, cycle4, gate_context, tmp_path):
    bundle = build_qaoa_bundle(cycle4, context=gate_context)
    doc = bundle.to_dict()
    assert doc["$schema"] == "job.schema.json"
    rebuilt = JobBundle.from_dict(doc)
    assert rebuilt.to_dict() == doc
    path = tmp_path / "job.json"
    bundle.save(path)
    assert JobBundle.load(path).digest() == bundle.digest()


def test_digest_excludes_provenance(cycle4, gate_context):
    a = build_qaoa_bundle(cycle4, context=gate_context)
    b = build_qaoa_bundle(cycle4, context=gate_context)
    # provenance timestamps differ but the content digest is identical
    assert a.digest() == b.digest()


def test_with_context_retargets_without_touching_intent(cycle4):
    bundle = build_anneal_bundle(cycle4)
    retargeted = bundle.with_context(
        ContextDescriptor(exec=ExecPolicy(engine="exact.brute_force", samples=1))
    )
    assert retargeted.engine == "exact.brute_force"
    assert retargeted.operators.to_list() == bundle.operators.to_list()
    assert bundle.engine == "anneal.simulated_annealer"


def test_empty_bundle_rejected(ising_vars):
    with pytest.raises(PackagingError):
        JobBundle(qdts={}, operators=[prep_uniform(ising_vars)])
    with pytest.raises(PackagingError):
        JobBundle(qdts={ising_vars.id: ising_vars}, operators=[])


def test_register_lookup(ising_vars):
    bundle = JobBundle(
        qdts={ising_vars.id: ising_vars},
        operators=[prep_uniform(ising_vars), measurement(ising_vars)],
    )
    assert bundle.register("ising_vars").width == 4
    with pytest.raises(PackagingError):
        bundle.register("ghost")


def test_package_validation_catches_bad_sequence(ising_vars):
    # An operator acting after measurement must be refused at packaging time.
    with pytest.raises(Exception):
        package(ising_vars, [measurement(ising_vars), prep_uniform(ising_vars)], None)


def test_package_accepts_multiple_registers(ising_vars, reg_phase10):
    from repro.oplib import qft_operator

    bundle = package(
        [ising_vars, reg_phase10],
        [prep_uniform(ising_vars), qft_operator(reg_phase10), measurement(ising_vars)],
        None,
        validate=True,
    )
    assert set(bundle.qdts) == {"ising_vars", "reg_phase"}
    assert bundle.total_width == 14


def test_result_schemas_listed(cycle4):
    bundle = build_qaoa_bundle(cycle4)
    assert len(bundle.result_schemas()) == 1
