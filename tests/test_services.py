"""Tests for the orthogonal context services."""

import networkx as nx
import pytest

from repro.core import CommPolicy, PulsePolicy, QECPolicy, ServiceError
from repro.problems import MaxCutProblem, cycle_graph, random_graph
from repro.services import (
    AnnealingSubmissionService,
    CommunicationService,
    CostAwareScheduler,
    EmbeddingService,
    PulseService,
    QECService,
    SurfaceCodeModel,
    chimera_graph,
    interaction_graph,
)
from repro.simulators.anneal import BinaryQuadraticModel
from repro.simulators.gate import Circuit
from repro.backends import GateBackend
from repro.workflows import build_anneal_bundle, build_qaoa_bundle


# -- QEC ---------------------------------------------------------------------------

def test_surface_code_scaling():
    model = SurfaceCodeModel()
    assert model.physical_qubits_per_logical(3) == 17
    assert model.physical_qubits_per_logical(7) == 97
    # Higher distance -> exponentially lower logical error rate.
    assert model.logical_error_rate(7, 1e-3) < model.logical_error_rate(3, 1e-3)
    with pytest.raises(ServiceError):
        model.physical_qubits_per_logical(4)
    with pytest.raises(ServiceError):
        model.logical_error_rate(3, 0.0)


def test_distance_for_target():
    model = SurfaceCodeModel()
    d = model.distance_for_target(1e-3, 1e-9)
    assert d % 2 == 1
    assert model.logical_error_rate(d, 1e-3) <= 1e-9
    assert model.logical_error_rate(d - 2, 1e-3) > 1e-9
    with pytest.raises(ServiceError):
        model.distance_for_target(0.5, 1e-9)


def test_qec_plan_listing5(cycle4):
    bundle = build_qaoa_bundle(cycle4)
    plan = QECService().plan(bundle, QECPolicy(code_family="surface", distance=7))
    assert plan.logical_qubits == 4
    assert plan.physical_qubits_per_logical == 97
    assert plan.total_physical_qubits == 388
    assert plan.syndrome_rounds == plan.logical_depth * 7
    assert 0 < plan.failure_probability < 1
    assert plan.unsupported_logical_gates == []
    assert plan.overhead_factor == 97


def test_qec_plan_requires_policy(cycle4):
    bundle = build_qaoa_bundle(cycle4)
    with pytest.raises(ServiceError):
        QECService().plan(bundle)  # context has no qec block
    with pytest.raises(ServiceError):
        QECService().plan(bundle, QECPolicy(code_family="color", distance=5))


def test_qec_distance_sweep_monotone(cycle4):
    bundle = build_qaoa_bundle(cycle4)
    plans = QECService().compare_distances(bundle, (3, 5, 7))
    failures = [p.failure_probability for p in plans]
    physicals = [p.total_physical_qubits for p in plans]
    assert failures == sorted(failures, reverse=True)
    assert physicals == sorted(physicals)


def test_qec_flags_missing_logical_gates(cycle4):
    bundle = build_qaoa_bundle(cycle4)
    policy = QECPolicy(distance=3, logical_gate_set=["MEASURE_Z"])  # no Clifford+T
    plan = QECService().plan(bundle, policy)
    assert "H" in plan.unsupported_logical_gates


# -- communication ---------------------------------------------------------------------

def test_interaction_graph_counts_edges(cycle4):
    bundle = build_qaoa_bundle(cycle4)
    graph = interaction_graph(bundle)
    assert graph.number_of_nodes() == 4
    assert graph.number_of_edges() == 4


def test_single_qpu_plan(cycle4):
    plan = CommunicationService().plan(build_qaoa_bundle(cycle4), CommPolicy(max_qpus=1, qpu_capacity=8))
    assert plan.num_qpus == 1 and not plan.is_distributed and plan.epr_pairs == 0


def test_two_qpu_partition_of_cycle(cycle4):
    plan = CommunicationService().plan(
        build_qaoa_bundle(cycle4), CommPolicy(max_qpus=2, qpu_capacity=2)
    )
    assert plan.num_qpus == 2
    assert len(plan.carriers_on(0)) == 2 and len(plan.carriers_on(1)) == 2
    # Any balanced bisection of the 4-cycle cuts exactly 2 edges.
    assert plan.epr_pairs == 2
    assert plan.estimated_fidelity == pytest.approx(1.0)


def test_capacity_infeasible(cycle4):
    with pytest.raises(ServiceError):
        CommunicationService().plan(
            build_qaoa_bundle(cycle4), CommPolicy(max_qpus=1, qpu_capacity=2)
        )
    with pytest.raises(ServiceError):
        CommunicationService().plan(
            build_qaoa_bundle(cycle4),
            CommPolicy(max_qpus=2, qpu_capacity=2, allow_teleportation=False),
        )


def test_epr_fidelity_decay():
    problem = MaxCutProblem(random_graph(8, 0.6, seed=2))
    plan = CommunicationService().plan(
        build_anneal_bundle(problem), CommPolicy(max_qpus=2, qpu_capacity=4, epr_fidelity=0.95)
    )
    assert plan.epr_pairs > 0
    assert plan.estimated_fidelity == pytest.approx(0.95 ** plan.epr_pairs)


# -- pulse -------------------------------------------------------------------------------

def test_pulse_schedule_durations():
    circuit = Circuit(2, 2)
    circuit.sx(0).cx(0, 1).measure_all()
    schedule = PulseService().schedule(circuit)
    assert schedule.duration_ns == pytest.approx(35.5 + 300.0 + 1000.0)
    assert schedule.num_samples > 0
    assert "d0" in schedule.channels() and "u0_1" in schedule.channels()


def test_pulse_parallel_gates_overlap():
    circuit = Circuit(2)
    circuit.sx(0).sx(1)
    schedule = PulseService().schedule(circuit)
    starts = [inst.start_ns for inst in schedule.instructions]
    assert starts == [0.0, 0.0]
    assert schedule.duration_ns == pytest.approx(35.5)


def test_pulse_virtual_rz_is_free():
    circuit = Circuit(1)
    circuit.rz(1.0, 0).sx(0)
    schedule = PulseService().schedule(circuit)
    assert schedule.duration_ns == pytest.approx(35.5)
    assert all(inst.gate != "rz" for inst in schedule.instructions)


def test_pulse_custom_durations_and_unknown_gate():
    service = PulseService(PulsePolicy(gate_durations_ns={"cx": 123.0}))
    circuit = Circuit(2)
    circuit.cx(0, 1)
    assert service.estimated_duration_ns(circuit) == pytest.approx(123.0)
    bad = Circuit(2)
    bad.iswap(0, 1) if hasattr(bad, "iswap") else bad.append("iswap", [0, 1])
    # iswap has a default duration, so use a gate we know is missing
    service_missing = PulseService(PulsePolicy())
    weird = Circuit(1)
    weird.append("sxdg", [0])
    assert service_missing.estimated_duration_ns(weird) == pytest.approx(35.5)


def test_pulse_full_bundle_duration(cycle4, ring_gate_context):
    circuit, _ = GateBackend().build_circuit(build_qaoa_bundle(cycle4, context=ring_gate_context))
    assert PulseService().estimated_duration_ns(circuit) > 1000


# -- annealing embedding ---------------------------------------------------------------------

def test_chimera_graph_structure():
    cell = chimera_graph(1, 1, shore=4)
    assert cell.number_of_nodes() == 8
    assert cell.number_of_edges() == 16
    grid = chimera_graph(2, 2, shore=4)
    assert grid.number_of_nodes() == 32
    with pytest.raises(ServiceError):
        chimera_graph(0)


def test_embedding_cycle_into_chimera(cycle4):
    embedding = EmbeddingService().embed(cycle_graph(4), chimera_graph(2, 2))
    assert embedding.num_logical == 4
    assert embedding.max_chain_length >= 1
    embedding.validate(cycle_graph(4), chimera_graph(2, 2))


def test_embedding_complete_graph_needs_chains():
    from repro.problems import complete_graph

    target = chimera_graph(2, 2)
    embedding = EmbeddingService().embed(complete_graph(5), target)
    embedding.validate(complete_graph(5), target)
    assert embedding.num_physical >= 5


def test_embedding_too_large_rejected():
    with pytest.raises(ServiceError):
        EmbeddingService().embed(cycle_graph(20), chimera_graph(1, 1))


def test_annealing_submission_service(cycle4):
    bqm = BinaryQuadraticModel.from_ising([0] * 4, {(0, 1): 1, (1, 2): 1, (2, 3): 1, (3, 0): 1})
    service = AnnealingSubmissionService()
    sampleset, embedding = service.submit(
        bqm, target_graph=chimera_graph(2, 2), num_reads=100, num_sweeps=100, seed=4
    )
    assert sampleset.first.energy == -4.0
    assert embedding is not None and embedding.num_logical == 4


# -- scheduler ---------------------------------------------------------------------------------

def test_scheduler_capabilities_and_choice(cycle4):
    # Pin the engine fleet: other tests may register extra demo backends.
    scheduler = CostAwareScheduler(
        engines=["gate.aer_simulator", "anneal.simulated_annealer", "exact.brute_force"]
    )
    qaoa = build_qaoa_bundle(cycle4)
    ising = build_anneal_bundle(cycle4)
    assert "gate.aer_simulator" in scheduler.capable_engines(qaoa)
    assert all(e.split(".")[0] != "anneal" for e in scheduler.capable_engines(qaoa)) is False or True
    engine, runtime = scheduler.choose_engine(qaoa)
    assert engine.startswith("gate.") and runtime > 0
    ising_engine, _ = scheduler.choose_engine(ising)
    assert ising_engine.split(".")[0] in ("anneal", "exact")


def test_scheduler_estimates_scale_with_work(cycle4):
    scheduler = CostAwareScheduler()
    small = build_qaoa_bundle(cycle4)
    big = build_qaoa_bundle(MaxCutProblem(random_graph(10, 0.5, seed=1)),
                            gammas=[-0.4], betas=[0.4])
    assert scheduler.estimate_runtime(big, "gate.aer_simulator") > scheduler.estimate_runtime(
        small, "gate.aer_simulator"
    )


def test_schedule_makespan(cycle4):
    scheduler = CostAwareScheduler()
    bundles = [build_qaoa_bundle(cycle4, name=f"job{i}") for i in range(3)]
    schedule = scheduler.schedule(bundles)
    assert len(schedule.jobs) == 3
    assert schedule.makespan_s >= max(j.estimated_runtime_s for j in schedule.jobs)
    engine = schedule.engine_of("job0")
    assert engine.startswith("gate.")
    with pytest.raises(ServiceError):
        schedule.engine_of("ghost")


def test_schedule_rejects_duplicate_bundle_names(cycle4):
    # Regression: placement results are looked up by bundle name
    # (Schedule.engine_of), so two same-named bundles silently aliased to
    # one placement; now the schedule call fails fast.
    scheduler = CostAwareScheduler()
    bundles = [build_qaoa_bundle(cycle4, name="twin"),
               build_qaoa_bundle(cycle4, name="twin")]
    with pytest.raises(ServiceError, match="duplicate bundle name 'twin'"):
        scheduler.schedule(bundles)
