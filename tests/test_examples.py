"""Smoke tests: the shipped examples run end to end.

Only the fast examples are executed here (the full set is exercised manually /
in CI); each one must complete without raising and print its headline result.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv=None, capsys=None):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path)] + list(argv or [])
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv
    return module


def test_quickstart_example(capsys):
    run_example("quickstart.py")
    output = capsys.readouterr().out
    assert "Both backends found the optimal cuts 1010 / 0101: True" in output


def test_qec_context_sweep_example(capsys):
    run_example("qec_context_sweep.py")
    output = capsys.readouterr().out
    assert "distance 7" in output
    assert "388" in output  # 4 logical patches x 97 physical qubits


def test_distributed_partitioning_example(capsys):
    run_example("distributed_partitioning.py")
    output = capsys.readouterr().out
    assert "predicted makespan" in output


def test_density_oracle_example(capsys):
    run_example("density_oracle.py")
    output = capsys.readouterr().out
    assert "Exact noisy GHZ distribution" in output
    assert "Oracle and trajectory engines agree within sampling tolerance: True" in output


def test_maxcut_portability_example(tmp_path, capsys):
    run_example("maxcut_portability.py", argv=[str(tmp_path / "artifacts")])
    output = capsys.readouterr().out
    assert "job.json" in output
    assert (tmp_path / "artifacts" / "gate_path" / "job.json").exists()
    assert (tmp_path / "artifacts" / "anneal_path" / "CTX.json").exists()
