"""Property-based tests (Hypothesis) for the core data structures and invariants."""

import math
from fractions import Fraction

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    BitOrder,
    CostHint,
    QuantumDataType,
    ResultSchema,
    integer_register,
    ising_register,
    phase_register,
)
from repro.results import Counts, decode_counts
from repro.simulators.anneal import BinaryQuadraticModel, Vartype
from repro.simulators.gate import Circuit, Statevector, circuit_unitary, equal_up_to_global_phase
from repro.simulators.gate.transpiler import decompose_to_basis, optimize_circuit

# Keep Hypothesis example counts modest: several properties simulate circuits.
settings.register_profile("repro", max_examples=25, deadline=None)
settings.load_profile("repro")


# -- QDT encode/decode round trips -----------------------------------------------------

@given(width=st.integers(1, 10), value=st.integers(0, 2**10 - 1),
       order=st.sampled_from([BitOrder.LSB_0, BitOrder.MSB_0]))
def test_integer_encode_decode_round_trip(width, value, order):
    value = value % (1 << width)
    reg = integer_register("r", width, bit_order=order)
    assert reg.decode_bits(reg.encode_value(value)) == value


@given(width=st.integers(1, 10), index=st.integers(0, 2**10 - 1))
def test_bits_index_bijection(width, index):
    index = index % (1 << width)
    reg = integer_register("r", width)
    bits = reg.index_to_bits(index)
    assert len(bits) == width
    assert reg.bits_to_index(bits) == index


@given(width=st.integers(1, 8), numerator=st.integers(0, 255))
def test_phase_encode_decode_round_trip(width, numerator):
    reg = phase_register("p", width)
    value = Fraction(numerator % (1 << width), 1 << width)
    assert reg.decode_bits(reg.encode_value(value)) == value


@given(width=st.integers(1, 8), data=st.data())
def test_spin_encode_decode_round_trip(width, data):
    spins = tuple(data.draw(st.sampled_from([-1, 1])) for _ in range(width))
    reg = ising_register("s", width, measurement_semantics="AS_SPIN")
    assert reg.decode_bits(reg.encode_value(spins)) == spins


# -- cost hint algebra ------------------------------------------------------------------

cost_hints = st.builds(
    CostHint,
    twoq=st.one_of(st.none(), st.floats(0, 1e4)),
    depth=st.one_of(st.none(), st.floats(0, 1e4)),
    oneq=st.one_of(st.none(), st.floats(0, 1e4)),
)


@given(a=cost_hints, b=cost_hints)
def test_sequential_composition_is_commutative_in_totals(a, b):
    ab, ba = a + b, b + a
    assert ab.get("twoq") == ba.get("twoq")
    assert ab.get("depth") == ba.get("depth")


@given(a=cost_hints, b=cost_hints, c=cost_hints)
def test_sequential_composition_is_associative(a, b, c):
    left = (a + b) + c
    right = a + (b + c)
    for name in ("twoq", "depth", "oneq"):
        assert math.isclose(left.get(name), right.get(name), rel_tol=1e-9, abs_tol=1e-9)


@given(a=cost_hints, b=cost_hints)
def test_parallel_depth_never_exceeds_sequential(a, b):
    assert a.parallel(b).get("depth") <= a.sequential(b).get("depth") + 1e-9


# -- counts / decoding ----------------------------------------------------------------------

bitstrings4 = st.text(alphabet="01", min_size=4, max_size=4)


@given(data=st.dictionaries(bitstrings4, st.integers(1, 50), min_size=1, max_size=16))
def test_counts_probabilities_sum_to_one(data):
    counts = Counts(data)
    assert math.isclose(sum(counts.probabilities().values()), 1.0, rel_tol=1e-12)
    assert counts.shots == sum(data.values())


@given(data=st.dictionaries(bitstrings4, st.integers(1, 50), min_size=1, max_size=16))
def test_marginal_preserves_shots(data):
    counts = Counts(data)
    assert counts.marginal([0, 2]).shots == counts.shots


@given(data=st.dictionaries(bitstrings4, st.integers(1, 50), min_size=1, max_size=16))
def test_decoding_preserves_probability_mass(data):
    reg = ising_register("s", 4)
    schema = ResultSchema.for_register(reg)
    decoded = decode_counts(Counts(data), schema, {"s": reg})
    total = sum(o.probability for o in decoded["s"].outcomes)
    assert math.isclose(total, 1.0, rel_tol=1e-12)


# -- BQM invariants -----------------------------------------------------------------------------

@st.composite
def small_ising(draw):
    n = draw(st.integers(2, 6))
    h = [draw(st.floats(-2, 2)) for _ in range(n)]
    edges = {}
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                edges[(i, j)] = draw(st.floats(-2, 2))
    return BinaryQuadraticModel.from_ising(h, edges)


@given(bqm=small_ising(), data=st.data())
def test_vartype_conversion_preserves_energies(bqm, data):
    spins = np.array([data.draw(st.sampled_from([-1, 1])) for _ in range(bqm.num_variables)])
    binary = bqm.change_vartype(Vartype.BINARY)
    bits = (spins + 1) // 2
    assert math.isclose(bqm.energy(spins), binary.energy(bits), rel_tol=1e-9, abs_tol=1e-9)


@given(bqm=small_ising())
def test_energies_match_scalar_energy(bqm):
    rng = np.random.default_rng(0)
    samples = rng.choice([-1, 1], size=(8, bqm.num_variables))
    vectorised = bqm.energies(samples)
    scalar = [bqm.energy(row) for row in samples]
    assert np.allclose(vectorised, scalar)


# -- circuit / transpiler invariants ----------------------------------------------------------------

@st.composite
def random_circuits(draw):
    n = draw(st.integers(2, 4))
    circuit = Circuit(n)
    num_ops = draw(st.integers(1, 12))
    for _ in range(num_ops):
        kind = draw(st.sampled_from(["h", "x", "rz", "rx", "cx", "cp", "swap"]))
        if kind in ("h", "x"):
            circuit.append(kind, [draw(st.integers(0, n - 1))])
        elif kind in ("rz", "rx"):
            circuit.append(kind, [draw(st.integers(0, n - 1))], [draw(st.floats(-3, 3))])
        else:
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 1).filter(lambda x: x != a))
            params = [draw(st.floats(-3, 3))] if kind == "cp" else []
            circuit.append(kind, [a, b], params)
    return circuit


@given(circuit=random_circuits())
def test_decomposition_preserves_unitary(circuit):
    decomposed = decompose_to_basis(circuit, ["sx", "rz", "cx"])
    assert equal_up_to_global_phase(
        circuit_unitary(circuit), circuit_unitary(decomposed), atol=1e-7
    )


@given(circuit=random_circuits())
def test_optimisation_preserves_unitary_and_never_grows(circuit):
    optimized = optimize_circuit(circuit)
    assert len(optimized.instructions) <= len(circuit.instructions)
    assert equal_up_to_global_phase(
        circuit_unitary(circuit), circuit_unitary(optimized), atol=1e-7
    )


@given(circuit=random_circuits())
def test_inverse_circuit_composes_to_identity(circuit):
    n = circuit.num_qubits
    state = Statevector(n)
    state.evolve(circuit)
    state.evolve(circuit.inverse())
    assert state.fidelity(Statevector(n)) > 1 - 1e-9


@given(circuit=random_circuits())
def test_depth_is_bounded_by_gate_count(circuit):
    assert 1 <= circuit.depth() <= len(circuit.instructions)
