"""Tests for parallel chunked trajectory execution and fused unitary sweeps.

Two contracts from this PR:

* **worker-count reproducibility** — every shot chunk draws from its own
  ``SeedSequence``-spawned RNG stream and the chunk decomposition depends
  only on ``max_batch_memory``, so a seeded run yields *bit-identical*
  counts for any ``trajectory_workers`` value, across noisy, mid-circuit
  measurement and reset circuits.
* **fused sweep equivalence** — ``Statevector.evolve`` and
  ``circuit_unitary`` route through the fusion compiler by default and must
  match their unfused executable specifications exactly (up to float
  rounding of the fused matrix products).
"""

import numpy as np
import pytest

from repro.core import SimulationError
from repro.simulators.gate import (
    Circuit,
    NoiseModel,
    Statevector,
    StatevectorSimulator,
    circuit_unitary,
    transpile,
)
from repro.simulators.gate.fusion import GateStep, compile_trajectory_program


def noisy_circuit():
    circuit = Circuit(3, 3)
    circuit.h(0).cx(0, 1).cx(1, 2)
    circuit.measure_all()
    return circuit, NoiseModel(oneq_error=0.02, twoq_error=0.05, readout_error=0.02)


def mid_circuit_measurement_circuit():
    circuit = Circuit(2, 3)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.h(0).cx(0, 1)
    circuit.measure(0, 1)
    circuit.measure(1, 2)
    return circuit, None


def reset_circuit():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1)
    circuit.reset(0)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.measure(1, 1)
    return circuit, None


# -- worker-count reproducibility ---------------------------------------------------

@pytest.mark.parametrize(
    "make", [noisy_circuit, mid_circuit_measurement_circuit, reset_circuit]
)
def test_same_seed_identical_counts_across_worker_counts(make):
    circuit, noise = make()
    # 3 qubits, complex64: 128 B/shot -> 32-shot chunks -> many chunks.
    runs = {}
    for workers in (1, 4):
        simulator = StatevectorSimulator(
            noise_model=noise,
            max_batch_memory=128 * 32,
            trajectory_workers=workers,
        )
        result = simulator.run(circuit, shots=900, seed=71)
        assert result.metadata["trajectory_workers"] == workers
        assert result.metadata["num_batches"] > 1
        runs[workers] = dict(result.counts)
    assert runs[1] == runs[4]


def test_worker_count_does_not_change_chunk_decomposition():
    circuit, noise = noisy_circuit()
    metas = []
    for workers in (1, 4):
        simulator = StatevectorSimulator(
            noise_model=noise, max_batch_memory=128 * 16, trajectory_workers=workers
        )
        metas.append(simulator.run(circuit, shots=500, seed=3).metadata)
    assert metas[0]["num_batches"] == metas[1]["num_batches"]
    assert metas[0]["batch_size"] == metas[1]["batch_size"]


def test_parallel_single_chunk_matches_serial():
    # One chunk (no chunking): the pool is bypassed but results must agree.
    circuit, noise = noisy_circuit()
    serial = StatevectorSimulator(noise_model=noise).run(circuit, shots=400, seed=9)
    threaded = StatevectorSimulator(noise_model=noise, trajectory_workers=8).run(
        circuit, shots=400, seed=9
    )
    assert serial.metadata["num_batches"] == 1
    assert dict(serial.counts) == dict(threaded.counts)


def test_parallel_statevector_matches_serial():
    circuit, noise = reset_circuit()
    kwargs = dict(noise_model=noise, max_batch_memory=128 * 32)
    serial = StatevectorSimulator(trajectory_workers=1, **kwargs).run(
        circuit, shots=300, seed=5, return_statevector=True
    )
    threaded = StatevectorSimulator(trajectory_workers=4, **kwargs).run(
        circuit, shots=300, seed=5, return_statevector=True
    )
    assert np.allclose(serial.statevector.data, threaded.statevector.data)


def test_trajectory_workers_validation():
    with pytest.raises(SimulationError):
        StatevectorSimulator(trajectory_workers=0)
    with pytest.raises(SimulationError):
        StatevectorSimulator(trajectory_workers=-2)
    with pytest.raises(SimulationError):
        StatevectorSimulator(trajectory_workers="many")
    with pytest.raises(SimulationError):
        StatevectorSimulator(trajectory_workers=2.5)
    assert StatevectorSimulator(trajectory_workers="auto").trajectory_workers >= 1


def test_backend_wires_trajectory_workers():
    from repro.backends import GateBackend
    from repro.problems import MaxCutProblem
    from repro.workflows import build_qaoa_bundle

    bundle = build_qaoa_bundle(MaxCutProblem.cycle(4))
    options = bundle.context.exec.options
    options["noise"] = {"oneq_error": 1e-3}
    options["trajectory_workers"] = 4
    options["max_batch_memory"] = 4096
    result = GateBackend().run(bundle)
    assert result.metadata["trajectory_workers"] == 4
    assert result.metadata["num_batches"] > 1


# -- fused unitary sweeps ----------------------------------------------------------

def transpiled_sweep(num_qubits, seed=11):
    """A transpiled rz/sx/cx workload — the shape fusion pays off on."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits)
    for layer in range(3):
        for q in range(num_qubits):
            circuit.h(q)
            circuit.rz(float(rng.uniform(-np.pi, np.pi)), q)
        for q in range(0, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
        for q in range(1, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
    return transpile(circuit, basis_gates=["rz", "sx", "cx"]).circuit


def test_fused_evolve_matches_unfused_path():
    circuit = transpiled_sweep(5)
    fused = Statevector(5).evolve(circuit)
    unfused = Statevector(5).evolve(circuit, fuse=False)
    assert np.allclose(fused.data, unfused.data, atol=1e-10)


def test_fused_evolve_handles_wide_gates_and_barriers():
    circuit = Circuit(3)
    circuit.h(0).barrier()
    circuit.ccx(0, 1, 2)
    circuit.rz(0.4, 2)
    fused = Statevector(3).evolve(circuit)
    unfused = Statevector(3).evolve(circuit, fuse=False)
    assert np.allclose(fused.data, unfused.data, atol=1e-12)


def test_fused_evolve_uses_fewer_applications():
    circuit = transpiled_sweep(4)
    program = compile_trajectory_program(circuit)
    gate_steps = [s for s in program.steps if isinstance(s, GateStep)]
    raw_gates = sum(1 for inst in circuit.instructions if inst.is_gate)
    assert len(gate_steps) < raw_gates / 2


@pytest.mark.parametrize("fuse", [True, False])
def test_evolve_rejects_measurements(fuse):
    circuit = Circuit(1, 1)
    circuit.h(0)
    circuit.measure(0, 0)
    with pytest.raises(SimulationError):
        Statevector(1).evolve(circuit, fuse=fuse)


def test_fused_circuit_unitary_matches_unfused():
    circuit = transpiled_sweep(4)
    fused = circuit_unitary(circuit)
    unfused = circuit_unitary(circuit, fuse=False)
    assert np.allclose(fused, unfused, atol=1e-10)
    identity = fused @ fused.conj().T
    assert np.allclose(identity, np.eye(fused.shape[0]), atol=1e-9)


def test_fused_circuit_unitary_rejects_reset():
    circuit = Circuit(2)
    circuit.h(0)
    circuit.reset(1)
    with pytest.raises(SimulationError):
        circuit_unitary(circuit)
    with pytest.raises(SimulationError):
        circuit_unitary(circuit, fuse=False)


# -- BLAS thread pinning (PR 4) -----------------------------------------------------

def test_limit_blas_threads_sets_and_restores_environment(monkeypatch):
    import os

    from repro.simulators.gate.threads import THREAD_ENV_VARS, limit_blas_threads

    monkeypatch.setenv("OMP_NUM_THREADS", "8")
    monkeypatch.delenv("OPENBLAS_NUM_THREADS", raising=False)
    try:
        import threadpoolctl  # noqa: F401

        has_threadpoolctl = True
    except ImportError:
        has_threadpoolctl = False
    with limit_blas_threads(1):
        if not has_threadpoolctl:
            # Env-var fallback: every knob pinned for the duration.
            for var in THREAD_ENV_VARS:
                assert os.environ[var] == "1"
    # Restored exactly: pre-existing values back, absent ones absent again.
    assert os.environ["OMP_NUM_THREADS"] == "8"
    if not has_threadpoolctl:
        assert "OPENBLAS_NUM_THREADS" not in os.environ


def test_limit_blas_threads_rejects_nonpositive_limit():
    from repro.simulators.gate.threads import limit_blas_threads

    with pytest.raises(ValueError):
        with limit_blas_threads(0):
            pass  # pragma: no cover


def test_pin_blas_threads_knob_validated_and_counts_unchanged():
    with pytest.raises(SimulationError):
        StatevectorSimulator(pin_blas_threads="yes")
    circuit, noise = noisy_circuit()
    runs = {}
    for pin in (True, False):
        simulator = StatevectorSimulator(
            noise_model=noise,
            max_batch_memory=128 * 32,
            trajectory_workers=2,
            pin_blas_threads=pin,
        )
        runs[pin] = dict(simulator.run(circuit, shots=600, seed=5).counts)
    # The guard only caps intra-GEMM parallelism; sampling is untouched.
    assert runs[True] == runs[False]


def test_backend_wires_pin_blas_threads():
    from repro.backends.gate_backend import GateBackend
    from repro.core.context import ContextDescriptor, ExecPolicy
    from repro.problems import MaxCutProblem
    from repro.workflows import build_qaoa_bundle

    problem = MaxCutProblem.cycle(4)
    context = ContextDescriptor(
        exec=ExecPolicy(
            engine="gate.aer_simulator",
            samples=64,
            seed=2,
            options={"pin_blas_threads": False, "trajectory_workers": 2},
        )
    )
    bundle = build_qaoa_bundle(problem, context=context)
    result = GateBackend().run(bundle)
    assert result.counts.shots == 64


# -- process-pool executor equivalence (PR 8) ---------------------------------------

@pytest.fixture(scope="module")
def process_pool():
    """Tear the persistent worker pool down after this module's tests."""
    from repro.simulators.gate.procpool import shutdown_worker_pool

    yield
    shutdown_worker_pool()


@pytest.mark.parametrize(
    "make", [noisy_circuit, mid_circuit_measurement_circuit, reset_circuit]
)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_process_executor_counts_bit_identical_to_thread(make, workers, process_pool):
    circuit, noise = make()
    kwargs = dict(
        noise_model=noise, max_batch_memory=128 * 32, trajectory_workers=workers
    )
    thread = StatevectorSimulator(trajectory_executor="thread", **kwargs).run(
        circuit, shots=900, seed=71
    )
    process = StatevectorSimulator(trajectory_executor="process", **kwargs).run(
        circuit, shots=900, seed=71
    )
    assert thread.metadata["trajectory_executor"] == "thread"
    assert process.metadata["trajectory_executor"] == "process"
    # Same chunk decomposition, same per-chunk streams: bit-identical counts.
    assert process.metadata["num_batches"] == thread.metadata["num_batches"]
    assert dict(process.counts) == dict(thread.counts)


def test_process_executor_statevector_matches_thread(process_pool):
    circuit, noise = reset_circuit()
    kwargs = dict(noise_model=noise, max_batch_memory=128 * 32, trajectory_workers=2)
    thread = StatevectorSimulator(**kwargs).run(
        circuit, shots=300, seed=5, return_statevector=True
    )
    process = StatevectorSimulator(trajectory_executor="process", **kwargs).run(
        circuit, shots=300, seed=5, return_statevector=True
    )
    assert np.allclose(thread.statevector.data, process.statevector.data)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_process_executor_stabilizer_counts_identical(workers, process_pool):
    circuit = Circuit(4, 4)
    circuit.h(0).cx(0, 1).cx(1, 2).cx(2, 3)
    circuit.measure_all()
    noise = NoiseModel(oneq_error=0.01, twoq_error=0.02, readout_error=0.01)
    kwargs = dict(
        noise_model=noise,
        trajectory_engine="stabilizer",
        max_batch_memory=64,
        trajectory_workers=workers,
    )
    thread = StatevectorSimulator(**kwargs).run(circuit, shots=1500, seed=13)
    process = StatevectorSimulator(trajectory_executor="process", **kwargs).run(
        circuit, shots=1500, seed=13
    )
    assert process.metadata["trajectory_engine"] == "stabilizer"
    assert dict(process.counts) == dict(thread.counts)


def test_trajectory_executor_validation():
    with pytest.raises(SimulationError):
        StatevectorSimulator(trajectory_executor="fork")
    with pytest.raises(SimulationError):
        StatevectorSimulator(trajectory_executor="auto")  # resolved at backend level
    assert StatevectorSimulator(trajectory_executor="process").trajectory_executor == "process"


def test_resolve_trajectory_executor(monkeypatch):
    import os

    from repro.backends.registry import resolve_trajectory_executor

    assert resolve_trajectory_executor("thread") == "thread"
    assert resolve_trajectory_executor("process") == "process"
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    assert resolve_trajectory_executor("auto") == "thread"
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    assert resolve_trajectory_executor("auto") == "process"


def test_backend_wires_trajectory_executor(process_pool):
    from repro.backends import GateBackend
    from repro.problems import MaxCutProblem
    from repro.workflows import build_qaoa_bundle

    bundle = build_qaoa_bundle(MaxCutProblem.cycle(4))
    options = bundle.context.exec.options
    options["noise"] = {"oneq_error": 1e-3}
    options["max_batch_memory"] = 4096
    thread = GateBackend().run(bundle)
    options["trajectory_executor"] = "process"
    process = GateBackend().run(bundle)
    assert process.metadata["trajectory_executor"] == "process"
    assert dict(process.counts) == dict(thread.counts)


def test_worker_pool_is_persistent_and_grow_only(process_pool):
    from repro.simulators.gate.procpool import (
        get_worker_pool,
        shutdown_worker_pool,
        worker_pool_info,
    )

    shutdown_worker_pool()
    pool2 = get_worker_pool(2)
    assert worker_pool_info() == {"workers": 2, "started": 1}
    # Smaller request reuses the warm pool; larger request grows it.
    assert get_worker_pool(1) is pool2
    assert worker_pool_info()["workers"] == 2
    pool4 = get_worker_pool(4)
    assert pool4 is not pool2
    assert worker_pool_info()["workers"] == 4
