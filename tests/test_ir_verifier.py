"""Tests for the compiled-IR verifier (rules IR001-IR008 and TR001-TR006).

Each hand-corruption test builds a *valid* compiled artifact, breaks exactly
one invariant, and asserts the verifier reports the exact rule id with a
location that points at the corrupted element.  The property test compiles
random circuits across noise models and trajectory dtypes and asserts every
artifact verifies clean — with the session-wide verify-each fixture active,
the compilation itself would already have raised on a verifier regression.
"""

import dataclasses
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from engine_testlib import random_mixed_circuit, random_unitary_circuit
from repro.simulators.gate import (
    Circuit,
    NoiseModel,
    StatevectorSimulator,
    analysis,
)
from repro.simulators.gate.analysis import IRVerificationError
from repro.simulators.gate.fusion import (
    GateStep,
    TerminalSample,
    compile_parametric_template,
    compile_trajectory_program,
)
from repro.simulators.gate.kernels import build_plan

REPO_ROOT = Path(__file__).resolve().parent.parent


def bell_circuit() -> Circuit:
    circuit = Circuit(2, 2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure_all()
    return circuit


def noisy_program():
    circuit = bell_circuit()
    return compile_trajectory_program(circuit, NoiseModel(oneq_error=0.02, twoq_error=0.05))


def first_gate_index(program) -> int:
    return next(i for i, s in enumerate(program.steps) if isinstance(s, GateStep))


# -- clean artifacts ----------------------------------------------------------------


def test_clean_program_verifies():
    report = analysis.verify_program(compile_trajectory_program(bell_circuit()))
    assert report.ok
    assert report.rule_ids == ()


def test_clean_noisy_program_verifies():
    assert analysis.verify_program(noisy_program()).ok


def test_clean_template_verifies_with_rebind_probe():
    circuit = bell_circuit()
    report = analysis.verify_template(compile_parametric_template(circuit), circuit)
    assert report.ok


# -- hand-corrupted programs: exact rule id + provenance ----------------------------


def test_out_of_range_qubit_is_ir001():
    program = compile_trajectory_program(bell_circuit())
    index = first_gate_index(program)
    step = program.steps[index]
    program.steps[index] = dataclasses.replace(
        step, qubits=(step.qubits[0], program.num_qubits + 7)
    )
    report = analysis.verify_program(program)
    assert "IR001" in report.rule_ids
    assert any(f"steps[{index}]" in d.location for d in report.diagnostics)
    with pytest.raises(IRVerificationError) as excinfo:
        report.raise_if_failed()
    assert "IR001" in excinfo.value.report.rule_ids


def test_wrong_matrix_dtype_is_ir002():
    program = compile_trajectory_program(bell_circuit())
    index = first_gate_index(program)
    step = program.steps[index]
    narrow = np.asarray(step.matrix, dtype=np.complex64)
    program.steps[index] = GateStep(narrow, step.qubits, build_plan(narrow), step.noise)
    report = analysis.verify_program(program)
    assert "IR002" in report.rule_ids


def test_non_unitary_matrix_is_ir003():
    program = compile_trajectory_program(bell_circuit())
    index = first_gate_index(program)
    step = program.steps[index]
    bad = np.asarray(step.matrix, dtype=np.complex128).copy()
    bad[0, 0] = 2.5
    program.steps[index] = GateStep(bad, step.qubits, build_plan(bad), step.noise)
    report = analysis.verify_program(program)
    assert "IR003" in report.rule_ids
    assert any(f"steps[{index}]" in d.location for d in report.diagnostics)


def test_truncated_noise_branches_is_ir004():
    program = noisy_program()
    index, event_index = next(
        (i, j)
        for i, s in enumerate(program.steps)
        if isinstance(s, GateStep)
        for j, _ in enumerate(s.noise)
    )
    step = program.steps[index]
    event = step.noise[event_index]
    truncated = dataclasses.replace(event, operators=event.operators[:2])
    noise = list(step.noise)
    noise[event_index] = truncated
    program.steps[index] = dataclasses.replace(step, noise=tuple(noise))
    report = analysis.verify_program(program)
    assert "IR004" in report.rule_ids
    assert any(f"steps[{index}]" in d.location for d in report.diagnostics)


def test_out_of_range_rate_is_ir005():
    program = noisy_program()
    index = next(
        i for i, s in enumerate(program.steps) if isinstance(s, GateStep) and s.noise
    )
    step = program.steps[index]
    event = dataclasses.replace(step.noise[0], rate=1.5)
    program.steps[index] = dataclasses.replace(
        step, noise=(event,) + step.noise[1:]
    )
    report = analysis.verify_program(program)
    assert "IR005" in report.rule_ids


def test_broken_implicit_terminal_is_ir006():
    circuit = Circuit(2, 2)
    circuit.h(0)
    circuit.cx(0, 1)
    program = compile_trajectory_program(circuit)
    assert program.terminal is not None and program.terminal.implicit
    program.terminal = TerminalSample(pairs=((0, 0),), implicit=True)
    report = analysis.verify_program(program)
    assert "IR006" in report.rule_ids


# -- result metadata (IR007) --------------------------------------------------------


def test_result_metadata_verifies_clean():
    result = StatevectorSimulator().run(bell_circuit(), shots=64, seed=3)
    assert analysis.verify_result(result).ok


def test_missing_statevector_kind_is_ir007():
    result = StatevectorSimulator().run(bell_circuit(), shots=64, seed=3)
    result.metadata.pop("statevector_kind")
    report = analysis.verify_result(result)
    assert "IR007" in report.rule_ids
    assert any("statevector_kind" in d.location for d in report.diagnostics)


def test_missing_compiled_steps_is_ir007():
    simulator = StatevectorSimulator(noise_model=NoiseModel(oneq_error=0.01))
    result = simulator.run(bell_circuit(), shots=64, seed=3)
    result.metadata.pop("compiled_steps")
    report = analysis.verify_result(result)
    assert "IR007" in report.rule_ids


# -- cache-key soundness (IR008) ----------------------------------------------------


def test_parameter_dependent_structure_is_ir008():
    """``crx(0)`` degenerates to a diagonal, so the structural key is unsound.

    The template compiled at angle 0 makes a 2q-absorption decision that a
    perturbed angle would not; the IR008 rebind probe must flag it.  With the
    session-wide verify-each fixture active the hook raises at compile time,
    which is exactly the verify-each contract.
    """
    circuit = Circuit(2, 2)
    circuit.h(0)
    circuit.crx(0.0, 0, 1)
    if analysis.verify_each_enabled():
        with pytest.raises(IRVerificationError) as excinfo:
            compile_parametric_template(circuit)
        assert excinfo.value.report.rule_ids == ("IR008",)
    analysis.set_verify_each(False)
    try:
        template = compile_parametric_template(circuit)
        report = analysis.verify_template(template, circuit)
    finally:
        analysis.set_verify_each(True)
    assert report.rule_ids == ("IR008",)


def test_verify_each_fixture_is_active():
    assert analysis.verify_each_enabled()


# -- transpiler stage rules (TR) ----------------------------------------------------


def test_stage_basis_violation_is_tr005():
    circuit = Circuit(2, 2)
    circuit.crx(1.1, 0, 1)
    report = analysis.verify_stage(
        "translate", circuit, basis_gates=["sx", "rz", "cx"]
    )
    assert "TR005" in report.rule_ids


def test_stage_coupling_violation_is_tr004():
    circuit = Circuit(3, 3)
    circuit.cx(0, 2)
    report = analysis.verify_stage("route", circuit, coupling_map=[(0, 1), (1, 2)])
    assert "TR004" in report.rule_ids


def test_stage_record_mismatch_is_tr006():
    source = bell_circuit()
    pruned = Circuit(2, 2)
    pruned.h(0)
    pruned.cx(0, 1)
    pruned.measure(0, 0)  # dropped one terminal measurement
    report = analysis.verify_stage("optimize", pruned, source=source)
    assert "TR006" in report.rule_ids


def test_unknown_stage_rejected():
    with pytest.raises(ValueError):
        analysis.verify_stage("polish", bell_circuit())


# -- property test: random programs always verify clean -----------------------------


@pytest.mark.parametrize("seed", [11, 23, 37, 59])
def test_random_programs_verify_clean(seed):
    rng = np.random.default_rng(seed)
    noise_settings = (None, NoiseModel(oneq_error=0.01, twoq_error=0.04))
    dtype_settings = (None, np.dtype(np.complex64))
    for builder, depth in (
        (random_unitary_circuit, 12),
        (random_mixed_circuit, 16),
    ):
        circuit = builder(rng, 4, depth)
        template = compile_parametric_template(circuit)
        assert analysis.verify_template(template, circuit).ok
        for noise in noise_settings:
            for dtype in dtype_settings:
                program = template.bind(circuit, noise, dtype=dtype)
                report = analysis.verify_program(program)
                assert report.ok, [str(d) for d in report.diagnostics]


# -- the analyze.py driver ----------------------------------------------------------


def test_analyze_demo_corrupt_exits_nonzero(tmp_path):
    """The seeded corrupt program must fail the driver (exit nonzero + IR003)."""
    out = tmp_path / "analyze.json"
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "tools" / "analyze.py"),
            "--demo-corrupt",
            "--json",
            str(out),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode != 0
    assert "IR003" in proc.stdout
    assert out.exists()
