"""Differential validation of the trajectory engines against the density oracle.

Random circuits x noise levels x seeds: the batched and reference trajectory
engines' empirical histograms must match the density-matrix engine's exact
outcome distribution within total-variation tolerance, and each engine must be
bit-exactly reproducible under a fixed seed.  The quick lane runs a curated
subset on every pytest invocation; the full sweep is marked ``slow``
(deselect with ``-m "not slow"``).

Tolerance note: for a distribution over k outcomes sampled N times the
expected TVD scales like ``sqrt(k / (2 pi N))``; every bound below sits at
several times that, and all seeds are fixed, so the checks are deterministic.
"""

import numpy as np
import pytest

from repro.simulators.gate import (
    Circuit,
    DensityMatrixSimulator,
    NoiseModel,
    StatevectorSimulator,
)

from engine_testlib import (
    chi_square_statistic,
    random_mixed_circuit,
    random_unitary_circuit,
    total_variation_distance,
)

SHOTS = 2048  # the ISSUE's acceptance floor for the differential suite


def exact_distribution(circuit, noise=None):
    return DensityMatrixSimulator(noise_model=noise).probabilities(circuit)


def engine_counts(circuit, noise, engine, shots=SHOTS, seed=7, **kwargs):
    simulator = StatevectorSimulator(noise_model=noise, trajectory_engine=engine, **kwargs)
    return simulator.run(circuit, shots=shots, seed=seed).counts


def tvd_bound(distribution, shots, factor=5.0):
    """A deterministic-seed-friendly TVD bound: factor x the sqrt(k/2piN) scale."""
    k = max(len(distribution), 2)
    return factor * np.sqrt(k / (2 * np.pi * shots))


# -- quick lane ---------------------------------------------------------------------


def test_batched_matches_oracle_noisy_bell():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1).measure_all()
    noise = NoiseModel(oneq_error=0.05, twoq_error=0.1, readout_error=0.02)
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(circuit, noise, "batched")
    assert total_variation_distance(counts, exact) < tvd_bound(exact, SHOTS)


def test_reference_matches_oracle_noisy_bell():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1).measure_all()
    noise = NoiseModel(oneq_error=0.05, twoq_error=0.1, readout_error=0.02)
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(circuit, noise, "reference", shots=512)
    assert total_variation_distance(counts, exact) < tvd_bound(exact, 512)


def test_batched_matches_oracle_mid_circuit_and_reset():
    rng = np.random.default_rng(21)
    circuit = random_mixed_circuit(rng, 3, 12)
    noise = NoiseModel(oneq_error=0.02, twoq_error=0.05)
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(circuit, noise, "batched")
    assert total_variation_distance(counts, exact) < tvd_bound(exact, SHOTS)


def test_exact_path_matches_oracle_closed_form():
    # The noiseless terminal-measurement path and the density oracle must agree
    # to float precision, not just statistically.
    rng = np.random.default_rng(3)
    circuit = random_unitary_circuit(rng, 3, 15)
    circuit.measure_all()
    from repro.simulators.gate import Statevector

    unitary_part = Circuit(3, 3)
    for inst in circuit.instructions:
        if inst.name != "measure":
            unitary_part.append(inst.name, inst.qubits, inst.params)
    state = Statevector(3).evolve(unitary_part)
    exact = exact_distribution(circuit)
    for key, probability in state.probability_dict().items():
        assert exact.get(key, 0.0) == pytest.approx(probability, abs=1e-12)


def test_engines_are_seed_deterministic():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1).measure_all()
    noise = NoiseModel(oneq_error=0.05, readout_error=0.02)
    for engine in ("batched", "reference", "density"):
        first = engine_counts(circuit, noise, engine, shots=256, seed=11)
        second = engine_counts(circuit, noise, engine, shots=256, seed=11)
        assert dict(first) == dict(second), engine


def test_batched_seed_determinism_is_worker_invariant():
    rng = np.random.default_rng(9)
    circuit = random_mixed_circuit(rng, 3, 10)
    noise = NoiseModel(oneq_error=0.03, twoq_error=0.06)
    serial = engine_counts(
        circuit, noise, "batched", shots=1024, seed=5, max_batch_memory=4096
    )
    threaded = engine_counts(
        circuit,
        noise,
        "batched",
        shots=1024,
        seed=5,
        max_batch_memory=4096,
        trajectory_workers=4,
    )
    assert dict(serial) == dict(threaded)


# -- full sweep (slow lane) ---------------------------------------------------------


SWEEP_NOISE = (
    None,
    NoiseModel(oneq_error=0.02, twoq_error=0.04),
    NoiseModel(oneq_error=0.08, twoq_error=0.12, readout_error=0.03),
)


@pytest.mark.slow
@pytest.mark.parametrize("num_qubits", [2, 3, 4])
@pytest.mark.parametrize("noise_index", range(len(SWEEP_NOISE)))
@pytest.mark.parametrize("circuit_seed", [0, 1, 2])
def test_differential_sweep_unitary_circuits(num_qubits, noise_index, circuit_seed):
    noise = SWEEP_NOISE[noise_index]
    rng = np.random.default_rng(1000 * num_qubits + 10 * noise_index + circuit_seed)
    circuit = random_unitary_circuit(rng, num_qubits, 6 * num_qubits)
    circuit.measure_all()
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(circuit, noise, "batched", seed=circuit_seed)
    assert total_variation_distance(counts, exact) < tvd_bound(exact, SHOTS)
    # Chi-square as a second lens: dof ~ #outcomes; 5x dof is far beyond any
    # plausible statistical fluctuation yet catches gross distribution bugs.
    assert chi_square_statistic(counts, exact) < 5 * max(len(exact), 4) + 30


@pytest.mark.slow
@pytest.mark.parametrize("num_qubits", [2, 3])
@pytest.mark.parametrize("circuit_seed", [0, 1, 2])
def test_differential_sweep_mixed_circuits(num_qubits, circuit_seed):
    noise = NoiseModel(oneq_error=0.03, twoq_error=0.06, readout_error=0.02)
    rng = np.random.default_rng(500 + 10 * num_qubits + circuit_seed)
    circuit = random_mixed_circuit(rng, num_qubits, 5 * num_qubits)
    exact = exact_distribution(circuit, noise)
    for engine, shots in (("batched", SHOTS), ("reference", 768)):
        counts = engine_counts(circuit, noise, engine, shots=shots, seed=circuit_seed)
        assert total_variation_distance(counts, exact) < tvd_bound(exact, shots), engine


@pytest.mark.slow
def test_deterministic_density_sampling_tracks_exact_distribution():
    rng = np.random.default_rng(77)
    circuit = random_unitary_circuit(rng, 3, 18)
    circuit.measure_all()
    noise = NoiseModel(oneq_error=0.05, twoq_error=0.08)
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(
        circuit, noise, "density", shots=100_000, density_sampling="deterministic"
    )
    # Largest-remainder apportionment is within 1 count of p*shots per key.
    assert total_variation_distance(counts, exact) < len(exact) / 100_000
