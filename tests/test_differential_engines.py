"""Differential validation of the trajectory engines against the density oracle.

Random circuits x noise levels x seeds: the batched and reference trajectory
engines' empirical histograms must match the density-matrix engine's exact
outcome distribution within total-variation tolerance, and each engine must be
bit-exactly reproducible under a fixed seed.  The quick lane runs a curated
subset on every pytest invocation; the full sweep is marked ``slow``
(deselect with ``-m "not slow"``).

Tolerance note: for a distribution over k outcomes sampled N times the
expected TVD scales like ``sqrt(k / (2 pi N))``; every bound below sits at
several times that, and all seeds are fixed, so the checks are deterministic.
"""

import numpy as np
import pytest

from repro.simulators.gate import (
    Circuit,
    DensityMatrixSimulator,
    NoiseModel,
    StatevectorSimulator,
    clear_compile_caches,
    compile_cache_info,
)

from engine_testlib import (
    chi_square_statistic,
    random_clifford_circuit,
    random_mixed_circuit,
    random_unitary_circuit,
    total_variation_distance,
)

SHOTS = 2048  # the ISSUE's acceptance floor for the differential suite


def exact_distribution(circuit, noise=None):
    return DensityMatrixSimulator(noise_model=noise).probabilities(circuit)


def engine_counts(circuit, noise, engine, shots=SHOTS, seed=7, **kwargs):
    simulator = StatevectorSimulator(noise_model=noise, trajectory_engine=engine, **kwargs)
    return simulator.run(circuit, shots=shots, seed=seed).counts


def tvd_bound(distribution, shots, factor=5.0):
    """A deterministic-seed-friendly TVD bound: factor x the sqrt(k/2piN) scale."""
    k = max(len(distribution), 2)
    return factor * np.sqrt(k / (2 * np.pi * shots))


# -- quick lane ---------------------------------------------------------------------


def test_batched_matches_oracle_noisy_bell():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1).measure_all()
    noise = NoiseModel(oneq_error=0.05, twoq_error=0.1, readout_error=0.02)
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(circuit, noise, "batched")
    assert total_variation_distance(counts, exact) < tvd_bound(exact, SHOTS)


def test_reference_matches_oracle_noisy_bell():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1).measure_all()
    noise = NoiseModel(oneq_error=0.05, twoq_error=0.1, readout_error=0.02)
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(circuit, noise, "reference", shots=512)
    assert total_variation_distance(counts, exact) < tvd_bound(exact, 512)


def test_batched_matches_oracle_mid_circuit_and_reset():
    rng = np.random.default_rng(21)
    circuit = random_mixed_circuit(rng, 3, 12)
    noise = NoiseModel(oneq_error=0.02, twoq_error=0.05)
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(circuit, noise, "batched")
    assert total_variation_distance(counts, exact) < tvd_bound(exact, SHOTS)


def test_exact_path_matches_oracle_closed_form():
    # The noiseless terminal-measurement path and the density oracle must agree
    # to float precision, not just statistically.
    rng = np.random.default_rng(3)
    circuit = random_unitary_circuit(rng, 3, 15)
    circuit.measure_all()
    from repro.simulators.gate import Statevector

    unitary_part = Circuit(3, 3)
    for inst in circuit.instructions:
        if inst.name != "measure":
            unitary_part.append(inst.name, inst.qubits, inst.params)
    state = Statevector(3).evolve(unitary_part)
    exact = exact_distribution(circuit)
    for key, probability in state.probability_dict().items():
        assert exact.get(key, 0.0) == pytest.approx(probability, abs=1e-12)


def test_engines_are_seed_deterministic():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1).measure_all()
    noise = NoiseModel(oneq_error=0.05, readout_error=0.02)
    for engine in ("batched", "reference", "density", "stabilizer"):
        first = engine_counts(circuit, noise, engine, shots=256, seed=11)
        second = engine_counts(circuit, noise, engine, shots=256, seed=11)
        assert dict(first) == dict(second), engine


def test_batched_seed_determinism_is_worker_invariant():
    rng = np.random.default_rng(9)
    circuit = random_mixed_circuit(rng, 3, 10)
    noise = NoiseModel(oneq_error=0.03, twoq_error=0.06)
    serial = engine_counts(
        circuit, noise, "batched", shots=1024, seed=5, max_batch_memory=4096
    )
    threaded = engine_counts(
        circuit,
        noise,
        "batched",
        shots=1024,
        seed=5,
        max_batch_memory=4096,
        trajectory_workers=4,
    )
    assert dict(serial) == dict(threaded)


# -- stabilizer tableau engine (quick lane) -----------------------------------------


def test_stabilizer_matches_oracle_noisy_bell():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1).measure_all()
    noise = NoiseModel(oneq_error=0.05, twoq_error=0.1, readout_error=0.02)
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(circuit, noise, "stabilizer")
    assert total_variation_distance(counts, exact) < tvd_bound(exact, SHOTS)


def test_stabilizer_matches_oracle_noisy_ghz():
    circuit = Circuit(3, 3)
    circuit.h(0).cx(0, 1).cx(1, 2).measure_all()
    noise = NoiseModel(oneq_error=0.04, twoq_error=0.08, readout_error=0.01)
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(circuit, noise, "stabilizer")
    assert total_variation_distance(counts, exact) < tvd_bound(exact, SHOTS)
    assert chi_square_statistic(counts, exact) < 5 * max(len(exact), 4) + 30


def test_stabilizer_matches_batched_on_clifford_circuit():
    # Both trajectory engines sample the same physical distribution; compare
    # their histograms against each other (statistically) on a random
    # Clifford circuit the exact engines can also reach.
    rng = np.random.default_rng(31)
    circuit = random_clifford_circuit(rng, 3, 15)
    noise = NoiseModel(oneq_error=0.03, twoq_error=0.06)
    exact = exact_distribution(circuit, noise)
    stab = engine_counts(circuit, noise, "stabilizer")
    batched = engine_counts(circuit, noise, "batched")
    bound = tvd_bound(exact, SHOTS)
    assert total_variation_distance(stab, exact) < bound
    # Empirical-vs-empirical TVD fluctuates at twice the one-sided scale.
    shots = sum(stab.values())
    empirical = {key: value / shots for key, value in stab.items()}
    assert total_variation_distance(batched, empirical) < 2 * bound


def test_stabilizer_seed_determinism_is_worker_invariant():
    rng = np.random.default_rng(13)
    circuit = random_clifford_circuit(rng, 4, 16)
    noise = NoiseModel(oneq_error=0.03, twoq_error=0.06, readout_error=0.01)
    reference = None
    for workers in (1, 2, 4):
        counts = engine_counts(
            circuit,
            noise,
            "stabilizer",
            shots=1024,
            seed=5,
            max_batch_memory=1024,
            trajectory_workers=workers,
        )
        if reference is None:
            reference = dict(counts)
        assert dict(counts) == reference, workers


def test_stabilizer_counts_identical_cold_vs_warm_compile():
    rng = np.random.default_rng(47)
    circuit = random_clifford_circuit(rng, 3, 12)
    noise = NoiseModel(oneq_error=0.05, twoq_error=0.08, readout_error=0.02)
    clear_compile_caches()
    cold = engine_counts(circuit, noise, "stabilizer", shots=512, seed=19)
    info = compile_cache_info()
    assert info["stabilizer"]["misses"] >= 1
    warm = engine_counts(circuit, noise, "stabilizer", shots=512, seed=19)
    assert compile_cache_info()["stabilizer"]["hits"] >= 1
    assert dict(cold) == dict(warm)


# -- noisy compile cache + GEMM path (PR 5) -----------------------------------------


def test_noisy_counts_identical_cold_vs_warm_compile_across_engines():
    # Every engine now compiles noisy circuits through the two-level cache;
    # a warm rerun (program-cache hit) must reproduce the cold run's seeded
    # counts bit for bit on each engine.
    rng = np.random.default_rng(77)
    circuit = random_mixed_circuit(rng, 3, 12)
    noise = NoiseModel(oneq_error=0.06, twoq_error=0.1, readout_error=0.02)
    for engine, shots in (("batched", 1024), ("reference", 256), ("density", 1024)):
        clear_compile_caches()
        cold = engine_counts(circuit, noise, engine, shots=shots, seed=19)
        info = compile_cache_info()
        assert info["template"]["misses"] >= 1, engine
        warm = engine_counts(circuit, noise, engine, shots=shots, seed=19)
        assert compile_cache_info()["program"]["hits"] >= 1, engine
        assert dict(cold) == dict(warm), engine


def test_gemm_and_slice_noise_paths_sample_identically():
    # The per-shot operator GEMM path and the masked-slice path must be
    # interchangeable: identical RNG draws, bit-identical amplitudes, and
    # therefore identical seeded counts at every worker count.
    rng = np.random.default_rng(88)
    circuit = random_mixed_circuit(rng, 4, 14)
    noise = NoiseModel(oneq_error=0.15, twoq_error=0.2, readout_error=0.03)
    reference = None
    for threshold in (None, 0.0):
        for workers in (1, 4):
            counts = engine_counts(
                circuit,
                noise,
                "batched",
                shots=1024,
                seed=3,
                max_batch_memory=4096,
                trajectory_workers=workers,
                noise_gemm_threshold=threshold,
            )
            if reference is None:
                reference = dict(counts)
            assert dict(counts) == reference, (threshold, workers)


def test_gemm_path_matches_oracle_at_high_noise():
    # High rates are exactly where the GEMM path engages by default; its
    # histogram must still track the closed-form distribution.
    circuit = Circuit(3, 3)
    circuit.h(0).cx(0, 1).cx(1, 2).measure_all()
    noise = NoiseModel(oneq_error=0.1, twoq_error=0.2, readout_error=0.05)
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(circuit, noise, "batched", noise_gemm_threshold=0.0)
    assert total_variation_distance(counts, exact) < tvd_bound(exact, SHOTS)


# -- full sweep (slow lane) ---------------------------------------------------------


SWEEP_NOISE = (
    None,
    NoiseModel(oneq_error=0.02, twoq_error=0.04),
    NoiseModel(oneq_error=0.08, twoq_error=0.12, readout_error=0.03),
)


@pytest.mark.slow
@pytest.mark.parametrize("num_qubits", [2, 3, 4])
@pytest.mark.parametrize("noise_index", range(len(SWEEP_NOISE)))
@pytest.mark.parametrize("circuit_seed", [0, 1, 2])
def test_differential_sweep_unitary_circuits(num_qubits, noise_index, circuit_seed):
    noise = SWEEP_NOISE[noise_index]
    rng = np.random.default_rng(1000 * num_qubits + 10 * noise_index + circuit_seed)
    circuit = random_unitary_circuit(rng, num_qubits, 6 * num_qubits)
    circuit.measure_all()
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(circuit, noise, "batched", seed=circuit_seed)
    assert total_variation_distance(counts, exact) < tvd_bound(exact, SHOTS)
    # Chi-square as a second lens: dof ~ #outcomes; 5x dof is far beyond any
    # plausible statistical fluctuation yet catches gross distribution bugs.
    assert chi_square_statistic(counts, exact) < 5 * max(len(exact), 4) + 30


@pytest.mark.slow
@pytest.mark.parametrize("num_qubits", [2, 3])
@pytest.mark.parametrize("circuit_seed", [0, 1, 2])
def test_differential_sweep_mixed_circuits(num_qubits, circuit_seed):
    noise = NoiseModel(oneq_error=0.03, twoq_error=0.06, readout_error=0.02)
    rng = np.random.default_rng(500 + 10 * num_qubits + circuit_seed)
    circuit = random_mixed_circuit(rng, num_qubits, 5 * num_qubits)
    exact = exact_distribution(circuit, noise)
    for engine, shots in (("batched", SHOTS), ("reference", 768)):
        counts = engine_counts(circuit, noise, engine, shots=shots, seed=circuit_seed)
        assert total_variation_distance(counts, exact) < tvd_bound(exact, shots), engine


@pytest.mark.slow
@pytest.mark.parametrize("num_qubits", [2, 3, 4])
@pytest.mark.parametrize("circuit_seed", [0, 1, 2])
def test_sweep_noisy_cache_and_gemm_identity(num_qubits, circuit_seed):
    # Sweep lane of the PR 5 identities: cold-vs-warm compile per engine and
    # GEMM-vs-slice per worker count, over random mixed circuits.
    rng = np.random.default_rng(4200 + 10 * num_qubits + circuit_seed)
    circuit = random_mixed_circuit(rng, num_qubits, 5 * num_qubits)
    noise = NoiseModel(oneq_error=0.08, twoq_error=0.14, readout_error=0.02)
    for engine, shots in (("batched", 1024), ("reference", 128), ("density", 512)):
        clear_compile_caches()
        cold = engine_counts(circuit, noise, engine, shots=shots, seed=circuit_seed)
        warm = engine_counts(circuit, noise, engine, shots=shots, seed=circuit_seed)
        assert dict(cold) == dict(warm), engine
    reference = None
    for threshold in (None, 0.0, 64.0):
        for workers in (1, 2, 4):
            counts = engine_counts(
                circuit,
                noise,
                "batched",
                shots=1024,
                seed=circuit_seed,
                max_batch_memory=2048,
                trajectory_workers=workers,
                noise_gemm_threshold=threshold,
            )
            if reference is None:
                reference = dict(counts)
            assert dict(counts) == reference, (threshold, workers)


@pytest.mark.slow
@pytest.mark.parametrize("num_qubits", [2, 3, 4])
@pytest.mark.parametrize("noise_index", range(len(SWEEP_NOISE)))
@pytest.mark.parametrize("circuit_seed", [0, 1, 2])
def test_differential_sweep_clifford_circuits(num_qubits, noise_index, circuit_seed):
    # The stabilizer tentpole sweep: seeded random Clifford circuits checked
    # against the density oracle (TVD + chi-square) and against the batched
    # amplitude engine, across the same noise grid as the unitary sweep.
    noise = SWEEP_NOISE[noise_index]
    rng = np.random.default_rng(7000 + 1000 * num_qubits + 10 * noise_index + circuit_seed)
    circuit = random_clifford_circuit(rng, num_qubits, 6 * num_qubits)
    exact = exact_distribution(circuit, noise)
    bound = tvd_bound(exact, SHOTS)
    stab = engine_counts(circuit, noise, "stabilizer", seed=circuit_seed)
    batched = engine_counts(circuit, noise, "batched", seed=circuit_seed)
    assert total_variation_distance(stab, exact) < bound
    assert total_variation_distance(batched, exact) < bound
    assert chi_square_statistic(stab, exact) < 5 * max(len(exact), 4) + 30
    # Engine-vs-engine: two empirical histograms of the same distribution.
    empirical = {key: value / SHOTS for key, value in stab.items()}
    assert total_variation_distance(batched, empirical) < 2 * bound


@pytest.mark.slow
def test_deterministic_density_sampling_tracks_exact_distribution():
    rng = np.random.default_rng(77)
    circuit = random_unitary_circuit(rng, 3, 18)
    circuit.measure_all()
    noise = NoiseModel(oneq_error=0.05, twoq_error=0.08)
    exact = exact_distribution(circuit, noise)
    counts = engine_counts(
        circuit, noise, "density", shots=100_000, density_sampling="deterministic"
    )
    # Largest-remainder apportionment is within 1 count of p*shots per key.
    assert total_variation_distance(counts, exact) < len(exact) / 100_000
