"""Tests for the state-vector simulator."""

import math

import numpy as np
import pytest

from repro.core import SimulationError
from repro.simulators.gate import (
    Circuit,
    NoiseModel,
    Statevector,
    StatevectorSimulator,
    index_to_bits,
)


def test_initial_state_and_amplitudes():
    state = Statevector(2)
    assert state.amplitude("00") == 1.0
    assert state.probability_dict() == {"00": 1.0}


def test_from_bitstring():
    state = Statevector.from_bitstring("011")
    assert state.amplitude("011") == 1.0
    assert state.expectation_z(0) == 1.0  # qubit 0 is |0>
    assert state.expectation_z(1) == -1.0


def test_index_to_bits_convention():
    # char i of the bitstring is qubit i; qubit 0 is the most significant flat bit
    assert index_to_bits(0b100, 3) == "100"
    assert index_to_bits(1, 3) == "001"


def test_hadamard_and_bell_state():
    state = Statevector(2)
    state.apply_gate("h", [0]).apply_gate("cx", [0, 1])
    probs = state.probability_dict()
    assert set(probs) == {"00", "11"}
    assert abs(probs["00"] - 0.5) < 1e-12
    assert abs(state.expectation_zz(0, 1) - 1.0) < 1e-12
    assert abs(state.expectation_z(0)) < 1e-12


def test_evolve_circuit_matches_manual():
    circuit = Circuit(2)
    circuit.h(0).cx(0, 1)
    evolved = Statevector(2).evolve(circuit)
    manual = Statevector(2).apply_gate("h", [0]).apply_gate("cx", [0, 1])
    assert evolved.fidelity(manual) == pytest.approx(1.0)


def test_evolve_rejects_measurement():
    circuit = Circuit(1, 1)
    circuit.measure(0, 0)
    with pytest.raises(SimulationError):
        Statevector(1).evolve(circuit)


def test_ghz_counts_exact_path():
    circuit = Circuit(3, 3)
    circuit.h(0).cx(0, 1).cx(1, 2).measure_all()
    result = StatevectorSimulator().run(circuit, shots=4000, seed=11)
    counts = result.counts
    assert set(counts) == {"000", "111"}
    assert abs(counts.probability("000") - 0.5) < 0.05
    assert result.metadata["method"] == "exact"


def test_measure_subset_of_qubits():
    circuit = Circuit(2, 1)
    circuit.x(1).measure(1, 0)
    counts = StatevectorSimulator().run(circuit, shots=100, seed=0).counts
    assert dict(counts) == {"1": 100}


def test_mid_circuit_measurement_uses_trajectories():
    circuit = Circuit(1, 2)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.x(0)
    circuit.measure(0, 1)
    result = StatevectorSimulator().run(circuit, shots=200, seed=5)
    assert result.metadata["method"] == "trajectories"
    # Second measurement is always the complement of the first.
    for key in result.counts:
        assert key[0] != key[1]


def test_reset_collapses_to_zero():
    circuit = Circuit(1, 1)
    circuit.h(0)
    circuit.reset(0)
    circuit.measure(0, 0)
    counts = StatevectorSimulator().run(circuit, shots=100, seed=3).counts
    assert dict(counts) == {"0": 100}


def test_seed_reproducibility():
    circuit = Circuit(2, 2)
    circuit.h(0).h(1).measure_all()
    sim = StatevectorSimulator()
    a = sim.run(circuit, shots=500, seed=42).counts
    b = sim.run(circuit, shots=500, seed=42).counts
    assert dict(a) == dict(b)


def test_readout_noise_flips_outcomes():
    circuit = Circuit(1, 1)
    circuit.measure(0, 0)  # ideal outcome always 0
    noisy = StatevectorSimulator(noise_model=NoiseModel(readout_error=0.5))
    counts = noisy.run(circuit, shots=400, seed=1).counts
    assert counts.get("1", 0) > 100


def test_gate_noise_perturbs_ghz():
    circuit = Circuit(2, 2)
    circuit.h(0).cx(0, 1).measure_all()
    noisy = StatevectorSimulator(noise_model=NoiseModel(twoq_error=0.5))
    counts = noisy.run(circuit, shots=300, seed=2).counts
    assert set(counts) - {"00", "11"}  # some non-GHZ outcomes appear


def test_sample_counts_and_statevector_return():
    circuit = Circuit(2, 2)
    circuit.h(0).measure_all()
    result = StatevectorSimulator().run(circuit, shots=100, seed=9, return_statevector=True)
    assert result.statevector is not None
    assert result.get_counts().shots == 100


def test_measurement_free_circuit_measured_implicitly():
    # Documented contract: no measure instructions + shots > 0 => implicit
    # terminal measurement over all qubits, keyed in qubit order.
    circuit = Circuit(2)
    circuit.h(0)
    result = StatevectorSimulator().run(circuit, shots=1000, seed=4)
    assert result.metadata["implicit_measurement"] is True
    assert set(result.counts) <= {"00", "10"}
    assert result.counts.shots == 1000
    assert abs(result.counts.probability("00") - 0.5) < 0.06


def test_measurement_free_trajectory_circuit_measured_implicitly():
    # Noise forces the trajectory path; the implicit contract must hold there too.
    circuit = Circuit(2)
    circuit.h(0)
    noisy = StatevectorSimulator(noise_model=NoiseModel(oneq_error=0.01))
    result = noisy.run(circuit, shots=500, seed=6)
    assert result.metadata["method"] == "trajectories"
    assert result.metadata["implicit_measurement"] is True
    assert result.counts.shots == 500
    assert result.counts.num_clbits == 2


def test_zero_shots_returns_empty_counts():
    circuit = Circuit(2)
    circuit.h(0)
    result = StatevectorSimulator().run(circuit, shots=0)
    assert dict(result.counts) == {}
    assert result.metadata["implicit_measurement"] is False


def test_return_statevector_exact_path_is_pre_measurement():
    circuit = Circuit(2, 2)
    circuit.h(0).measure_all()
    result = StatevectorSimulator().run(circuit, shots=50, seed=1, return_statevector=True)
    assert result.metadata["statevector_kind"] == "pre_measurement"
    # Sampling must not collapse: both outcomes keep amplitude 1/sqrt(2).
    probs = result.statevector.probability_dict()
    assert set(probs) == {"00", "10"}
    assert abs(probs["00"] - 0.5) < 1e-9


def test_return_statevector_trajectory_path_is_collapsed_final_shot():
    circuit = Circuit(1, 1)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.h(0)
    circuit.measure(0, 0)  # mid-circuit + terminal: trajectory path
    result = StatevectorSimulator().run(circuit, shots=30, seed=8, return_statevector=True)
    assert result.metadata["statevector_kind"] == "final_trajectory"
    probs = result.statevector.probability_dict()
    assert len(probs) == 1  # collapsed to the last shot's outcome
    assert abs(sum(probs.values()) - 1.0) < 1e-6


def test_qubit_limit_enforced():
    with pytest.raises(SimulationError):
        Statevector(40)


def test_apply_matrix_shape_check():
    with pytest.raises(SimulationError):
        Statevector(2).apply_matrix(np.eye(2), [0, 1])
