"""Tests for operator descriptors and operator sequences."""

import pytest

from repro.core import (
    CompatibilityError,
    CostHint,
    DescriptorError,
    OperatorSequence,
    QuantumOperatorDescriptor,
    ResultSchema,
    ising_register,
    phase_register,
)


def make_qft_descriptor(reg):
    return QuantumOperatorDescriptor(
        name="QFT",
        rep_kind="QFT_TEMPLATE",
        domain_qdt=reg.id,
        params={"approx_degree": 0, "do_swaps": True, "inverse": False},
        cost_hint=CostHint(twoq=45, depth=100),
        result_schema=ResultSchema.for_register(reg),
    )


def test_listing3_round_trip(reg_phase10):
    op = make_qft_descriptor(reg_phase10)
    doc = op.to_dict()
    assert doc["$schema"] == "qod.schema.json"
    assert doc["rep_kind"] == "QFT_TEMPLATE"
    assert doc["domain_qdt"] == "reg_phase"
    assert doc["codomain_qdt"] == "reg_phase"
    assert doc["cost_hint"]["twoq"] == 45
    assert doc["result_schema"]["clbit_order"][0] == "reg_phase[0]"
    rebuilt = QuantumOperatorDescriptor.from_dict(doc)
    assert rebuilt.to_dict() == doc


def test_defaults_from_registry(reg_phase10):
    op = QuantumOperatorDescriptor(name="QFT", rep_kind="QFT_TEMPLATE", domain_qdt="reg_phase")
    assert op.params["approx_degree"] == 0
    assert op.params["do_swaps"] is True
    assert op.params["inverse"] is False


def test_semantic_queries(reg_phase10, ising_vars):
    qft = make_qft_descriptor(reg_phase10)
    assert qft.is_unitary and not qft.is_measurement
    meas = QuantumOperatorDescriptor(
        name="m", rep_kind="MEASUREMENT", domain_qdt=ising_vars.id,
        result_schema=ResultSchema.for_register(ising_vars),
    )
    assert meas.is_measurement and not meas.is_unitary
    assert qft.registers == ["reg_phase"]
    assert qft.primary_register == "reg_phase"


def test_missing_required_params():
    op = QuantumOperatorDescriptor(
        name="cost", rep_kind="ISING_COST_PHASE", domain_qdt="ising_vars",
        params={"edges": [[0, 1]]},
    )
    assert op.missing_params() == ["gamma"]
    with pytest.raises(DescriptorError):
        op.validate()


def test_measurement_requires_result_schema(ising_vars):
    op = QuantumOperatorDescriptor(name="m", rep_kind="MEASUREMENT", domain_qdt=ising_vars.id)
    with pytest.raises(DescriptorError):
        op.validate({ising_vars.id: ising_vars})


def test_with_params_is_functional(reg_phase10):
    op = make_qft_descriptor(reg_phase10)
    changed = op.with_params(approx_degree=2)
    assert changed.params["approx_degree"] == 2
    assert op.params["approx_degree"] == 0


def test_inverse_toggles_and_negates(reg_phase10):
    qft = make_qft_descriptor(reg_phase10)
    inv = qft.inverse()
    assert inv.params["inverse"] is True
    assert inv.name == "QFT_inv"
    assert inv.inverse().params["inverse"] is False
    cost = QuantumOperatorDescriptor(
        name="cost", rep_kind="ISING_COST_PHASE", domain_qdt="r",
        params={"gamma": 0.5, "edges": []},
    )
    assert cost.inverse().params["gamma"] == -0.5
    meas = QuantumOperatorDescriptor(name="m", rep_kind="MEASUREMENT", domain_qdt="r")
    with pytest.raises(DescriptorError):
        meas.inverse()


def test_unknown_register_caught(reg_phase10):
    op = make_qft_descriptor(reg_phase10)
    with pytest.raises(CompatibilityError):
        op.validate({})


def test_sequence_behaviour(ising_vars):
    from repro.oplib import measurement, prep_uniform

    seq = OperatorSequence([prep_uniform(ising_vars), measurement(ising_vars)])
    assert len(seq) == 2
    assert seq.registers() == ["ising_vars"]
    assert len(seq.measurements()) == 1
    assert seq.total_cost().oneq == 4
    sliced = seq[:1]
    assert isinstance(sliced, OperatorSequence) and len(sliced) == 1
    combined = sliced + OperatorSequence([measurement(ising_vars)])
    assert len(combined) == 2


def test_sequence_rejects_operation_after_measurement(ising_vars):
    from repro.oplib import measurement, prep_uniform

    seq = OperatorSequence([measurement(ising_vars), prep_uniform(ising_vars)])
    with pytest.raises(CompatibilityError):
        seq.validate({ising_vars.id: ising_vars})


def test_sequence_inverse_reverses(reg_phase10):
    from repro.oplib import qft_operator

    seq = OperatorSequence([qft_operator(reg_phase10), qft_operator(reg_phase10, name="QFT2")])
    inv = seq.inverse()
    assert [op.name for op in inv] == ["QFT2_inv", "QFT_inv"]


def test_sequence_json_round_trip(reg_phase10):
    seq = OperatorSequence([make_qft_descriptor(reg_phase10)])
    docs = seq.to_list()
    rebuilt = OperatorSequence.from_list(docs)
    assert rebuilt.to_list() == docs


def test_empty_name_rejected():
    with pytest.raises(DescriptorError):
        QuantumOperatorDescriptor(name="", rep_kind="IDENTITY", domain_qdt="r")
    with pytest.raises(DescriptorError):
        QuantumOperatorDescriptor(name="x", rep_kind="IDENTITY", domain_qdt=[])
