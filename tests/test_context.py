"""Tests for execution context descriptors."""

import pytest

from repro.core import (
    AnnealPolicy,
    CommPolicy,
    ContextDescriptor,
    ContextError,
    ExecPolicy,
    PulsePolicy,
    QECPolicy,
    TargetSpec,
)


def test_listing4_round_trip():
    ctx = ContextDescriptor(
        exec=ExecPolicy(
            engine="gate.aer_simulator",
            samples=4096,
            seed=42,
            target=TargetSpec(
                basis_gates=["sx", "rz", "cx"],
                coupling_map=[(i, i + 1) for i in range(9)],
            ),
            options={"optimization_level": 2},
        )
    )
    doc = ctx.to_dict()
    assert doc["$schema"] == "ctx.schema.json"
    assert doc["exec"]["engine"] == "gate.aer_simulator"
    assert doc["exec"]["samples"] == 4096
    assert doc["exec"]["target"]["basis_gates"] == ["sx", "rz", "cx"]
    assert doc["exec"]["options"]["optimization_level"] == 2
    rebuilt = ContextDescriptor.from_dict(doc)
    assert rebuilt.to_dict() == doc


def test_listing5_qec_block_round_trip():
    ctx = ContextDescriptor(
        exec=ExecPolicy(engine="gate.aer_simulator"),
        qec=QECPolicy(code_family="surface", distance=7, allocator="auto"),
    )
    doc = ctx.to_dict()
    assert doc["qec"]["code_family"] == "surface"
    assert doc["qec"]["distance"] == 7
    rebuilt = ContextDescriptor.from_dict(doc)
    assert rebuilt.uses_qec and rebuilt.qec.distance == 7


def test_fig3_nested_contexts_form_accepted():
    doc = {
        "$schema": "ctx.schema.json",
        "contexts": {"anneal": {"num_reads": 1000}},
    }
    ctx = ContextDescriptor.from_dict(doc)
    assert ctx.anneal is not None and ctx.anneal.num_reads == 1000
    assert ctx.exec.engine_family == "anneal"


def test_exec_policy_validation():
    with pytest.raises(ContextError):
        ExecPolicy(engine="")
    with pytest.raises(ContextError):
        ExecPolicy(engine="gate.x", samples=0)
    assert ExecPolicy(engine="gate.aer_simulator").engine_family == "gate"


def test_target_spec_validation():
    with pytest.raises(ContextError):
        TargetSpec(coupling_map=[(0, 0)])
    spec = TargetSpec(coupling_map=[(0, 1), (1, 2)])
    assert not spec.is_all_to_all
    assert spec.max_qubit() == 2
    assert TargetSpec().is_all_to_all


def test_qec_policy_validation():
    with pytest.raises(ContextError):
        QECPolicy(distance=4)  # even distances rejected
    with pytest.raises(ContextError):
        QECPolicy(physical_error_rate=0.0)
    assert QECPolicy(distance=7).logical_gate_set


def test_anneal_policy_validation():
    with pytest.raises(ContextError):
        AnnealPolicy(num_reads=0)
    with pytest.raises(ContextError):
        AnnealPolicy(schedule="exponential")
    with pytest.raises(ContextError):
        AnnealPolicy(beta_range=(2.0, 1.0))
    policy = AnnealPolicy(beta_range=(0.1, 5.0))
    assert policy.to_dict()["beta_range"] == [0.1, 5.0]


def test_comm_and_pulse_policy_validation():
    with pytest.raises(ContextError):
        CommPolicy(max_qpus=0)
    with pytest.raises(ContextError):
        CommPolicy(epr_fidelity=1.5)
    with pytest.raises(ContextError):
        PulsePolicy(dt_ns=0)


def test_with_engine_preserves_everything_else():
    ctx = ContextDescriptor(
        exec=ExecPolicy(engine="gate.aer_simulator", samples=123, seed=9),
        qec=QECPolicy(distance=5),
    )
    retargeted = ctx.with_engine("anneal.simulated_annealer")
    assert retargeted.engine == "anneal.simulated_annealer"
    assert retargeted.samples == 123
    assert retargeted.qec.distance == 5
    # original untouched
    assert ctx.engine == "gate.aer_simulator"


def test_context_save_load(tmp_path):
    ctx = ContextDescriptor(exec=ExecPolicy(engine="gate.aer_simulator", samples=64))
    path = tmp_path / "CTX.json"
    ctx.save(path)
    assert ContextDescriptor.load(path).to_dict() == ctx.to_dict()
