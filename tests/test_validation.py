"""Tests for cross-descriptor validation and the validation report."""

import pytest

from repro.core import (
    CompatibilityError,
    ContextDescriptor,
    ContextError,
    ExecPolicy,
    QECPolicy,
    QuantumOperatorDescriptor,
    ResultSchema,
    TargetSpec,
    ising_register,
    verify,
)
from repro.core.validation import check_context, check_operator, check_sequence
from repro.oplib import ising_problem_operator, measurement, prep_uniform, qaoa_sequence


def test_verify_clean_qaoa_bundle(ising_vars, cycle4):
    seq = qaoa_sequence(ising_vars, cycle4.edges, gammas=[0.1], betas=[0.2])
    report = verify({ising_vars.id: ising_vars}, seq)
    assert report.ok
    assert not report.errors


def test_edge_out_of_range_rejected(ising_vars):
    op = QuantumOperatorDescriptor(
        name="bad", rep_kind="ISING_COST_PHASE", domain_qdt=ising_vars.id,
        params={"gamma": 0.1, "edges": [[0, 7]]},
    )
    with pytest.raises(CompatibilityError):
        check_operator(op, {ising_vars.id: ising_vars})


def test_h_length_mismatch_rejected(ising_vars):
    op = ising_problem_operator(ising_vars, edges=[(0, 1)])
    broken = op.with_params(h=[0.0, 0.0])
    with pytest.raises(CompatibilityError):
        check_operator(broken, {ising_vars.id: ising_vars})


def test_unbound_angle_detected(ising_vars):
    op = QuantumOperatorDescriptor(
        name="mixer", rep_kind="MIXER_RX", domain_qdt=ising_vars.id, params={}
    )
    report = verify({ising_vars.id: ising_vars}, [op, measurement(ising_vars)])
    assert not report.ok
    assert any("beta" in str(issue) for issue in report.errors)


def test_operation_after_measurement_rejected(ising_vars):
    ops = [measurement(ising_vars), prep_uniform(ising_vars)]
    with pytest.raises(CompatibilityError):
        check_sequence(ops, {ising_vars.id: ising_vars})


def test_annealing_engine_rejects_gate_templates(ising_vars, cycle4):
    seq = qaoa_sequence(ising_vars, cycle4.edges, gammas=[0.1], betas=[0.2])
    ctx = ContextDescriptor(exec=ExecPolicy(engine="anneal.simulated_annealer"))
    with pytest.raises(ContextError):
        check_context(ctx, seq, {ising_vars.id: ising_vars})


def test_qec_with_annealer_rejected(ising_vars):
    op = ising_problem_operator(ising_vars, edges=[(0, 1)])
    ctx = ContextDescriptor(
        exec=ExecPolicy(engine="anneal.simulated_annealer"), qec=QECPolicy(distance=3)
    )
    with pytest.raises(ContextError):
        check_context(ctx, [op], {ising_vars.id: ising_vars})


def test_coupling_map_too_small_rejected(ising_vars, cycle4):
    seq = qaoa_sequence(ising_vars, cycle4.edges, gammas=[0.1], betas=[0.2])
    ctx = ContextDescriptor(
        exec=ExecPolicy(
            engine="gate.aer_simulator",
            target=TargetSpec(coupling_map=[(0, 1)]),
        )
    )
    with pytest.raises(ContextError):
        check_context(ctx, seq, {ising_vars.id: ising_vars})


def test_warning_for_missing_measurement(ising_vars):
    report = verify({ising_vars.id: ising_vars}, [prep_uniform(ising_vars)])
    assert report.ok  # warnings only
    assert any("no measurement" in issue.message for issue in report.warnings)


def test_report_raise_if_failed(ising_vars):
    bad = QuantumOperatorDescriptor(
        name="bad", rep_kind="ISING_COST_PHASE", domain_qdt="ghost",
        params={"gamma": 0.1, "edges": []},
    )
    report = verify({ising_vars.id: ising_vars}, [bad])
    assert not report.ok
    with pytest.raises(CompatibilityError):
        report.raise_if_failed()


def test_register_table_key_mismatch(ising_vars):
    report = verify({"wrong_key": ising_vars}, [prep_uniform(ising_vars)])
    assert not report.ok
