"""Tests for the noisy fast path (PR 5).

Covers the four layers:

* **noisy parametric compilation** — a template bound with a noise model
  produces programs bit-identical to the uncached noisy compile, for the
  source circuit and for re-binds with fresh angles;
* **two-level compile cache** — program-level hits for exact re-runs,
  template-level hits for re-binds, dtype/noise folded into the program
  key, bounded LRUs with eviction, introspection via ``compile_cache_info``;
* **GEMM noise path** — ``apply_operator_columns`` agrees with per-column
  operator application, and the batched engine's GEMM/slice strategies are
  seeded-count bit-identical at every threshold and worker count;
* **transpile cache** — structure-keyed routing replay returns circuits
  identical to the uncached transpiler, with counters and eviction.
"""

import numpy as np
import pytest

from repro.core.errors import SimulationError
from repro.simulators.gate import (
    DEFAULT_COMPILE_CACHE_SIZE,
    Circuit,
    NoiseModel,
    StatevectorSimulator,
    clear_compile_caches,
    compile_cache_info,
    compile_trajectory_program,
    compile_trajectory_program_cached,
    set_compile_cache_size,
    transpile,
    transpile_cached,
)
from repro.simulators.gate.batched import BatchedStatevector
from repro.simulators.gate.fusion import GateStep, compile_parametric_template
from repro.simulators.gate.kernels import apply_operator_columns, build_plan
from repro.simulators.gate.transpiler import (
    clear_transpile_cache,
    set_transpile_cache_size,
    transpile_cache_info,
)

from engine_testlib import random_mixed_circuit, random_unitary_circuit

NOISE = NoiseModel(oneq_error=0.05, twoq_error=0.12, readout_error=0.02)


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Every test starts and ends with empty compile caches at default size."""
    clear_compile_caches()
    set_compile_cache_size(DEFAULT_COMPILE_CACHE_SIZE)
    yield
    clear_compile_caches()
    set_compile_cache_size(DEFAULT_COMPILE_CACHE_SIZE)


def qaoa_like_circuit(num_qubits, gamma, beta, *, measure=True):
    """A QAOA-shaped circuit whose angles are the only varying structure."""
    circuit = Circuit(num_qubits, num_qubits)
    for q in range(num_qubits):
        circuit.h(q)
    for q in range(num_qubits - 1):
        circuit.rzz(2.0 * gamma, q, q + 1)
    for q in range(num_qubits):
        circuit.rx(2.0 * beta, q)
    if measure:
        for q in range(num_qubits):
            circuit.measure(q, q)
    return circuit


def assert_noisy_programs_identical(a, b):
    """Bit-exact equality of two compiled programs, noise events included."""
    assert a.num_qubits == b.num_qubits and a.num_clbits == b.num_clbits
    assert a.terminal == b.terminal
    assert len(a.steps) == len(b.steps)
    for step_a, step_b in zip(a.steps, b.steps):
        assert type(step_a) is type(step_b)
        if not isinstance(step_a, GateStep):
            assert step_a == step_b
            continue
        assert step_a.qubits == step_b.qubits
        assert np.array_equal(step_a.matrix, step_b.matrix)
        assert step_a.plan == step_b.plan
        assert len(step_a.noise) == len(step_b.noise)
        for event_a, event_b in zip(step_a.noise, step_b.noise):
            assert event_a.qubits == event_b.qubits
            assert event_a.rate == event_b.rate
            assert len(event_a.operators) == len(event_b.operators)
            for (mat_a, plan_a), (mat_b, plan_b) in zip(
                event_a.operators, event_b.operators
            ):
                assert np.array_equal(mat_a, mat_b)
                assert plan_a == plan_b


# -- noisy parametric compilation ---------------------------------------------------


def test_noisy_cached_compile_is_bit_identical_to_uncached():
    for seed in range(4):
        rng = np.random.default_rng(seed)
        circuit = random_mixed_circuit(rng, 4, 18)
        cached = compile_trajectory_program_cached(circuit, NOISE)
        fresh = compile_trajectory_program(circuit, NOISE)
        assert_noisy_programs_identical(cached, fresh)


def test_noisy_template_rebinds_to_fresh_angles():
    cold = qaoa_like_circuit(5, 0.3, 0.7)
    warm = qaoa_like_circuit(5, 1.1, 0.2)
    compile_trajectory_program_cached(cold, NOISE)
    rebound = compile_trajectory_program_cached(warm, NOISE)
    info = compile_cache_info()
    assert info["template"]["misses"] == 1 and info["template"]["hits"] == 1
    assert_noisy_programs_identical(rebound, compile_trajectory_program(warm, NOISE))


def test_noisy_bind_via_template_matches_one_shot_compiler():
    # Same-pair-fusion-heavy circuits exercise the segment replay hardest.
    from test_fusion_properties import same_pair_heavy_circuit

    for seed in range(3):
        rng = np.random.default_rng(7700 + seed)
        circuit = same_pair_heavy_circuit(3, rng, length=18)
        template = compile_parametric_template(circuit)
        bound = template.bind(circuit, NOISE)
        assert_noisy_programs_identical(bound, compile_trajectory_program(circuit, NOISE))


def test_program_cache_hits_on_exact_rerun():
    circuit = qaoa_like_circuit(4, 0.4, 0.9)
    first = compile_trajectory_program_cached(circuit, NOISE)
    second = compile_trajectory_program_cached(circuit, NOISE)
    assert second is first  # the immutable program is shared, not rebound
    info = compile_cache_info()
    assert info["program"]["hits"] == 1 and info["program"]["misses"] == 1


def test_program_cache_key_separates_noise_and_dtype():
    circuit = qaoa_like_circuit(4, 0.4, 0.9)
    noiseless = compile_trajectory_program_cached(circuit)
    noisy = compile_trajectory_program_cached(circuit, NOISE)
    assert noisy is not noiseless
    assert not any(
        step.noise for step in noiseless.steps if isinstance(step, GateStep)
    )
    c64 = compile_trajectory_program_cached(
        circuit, NOISE, dtype=np.dtype(np.complex64)
    )
    c128 = compile_trajectory_program_cached(
        circuit, NOISE, dtype=np.dtype(np.complex128)
    )
    assert c64 is not c128 and c64 is not noisy
    assert compile_cache_info()["program"]["entries"] == 4
    # The dtype-specific artifact: identity-first operator stacks.
    stacks = [
        event.stack
        for step in c64.steps
        if isinstance(step, GateStep)
        for event in step.noise
    ]
    assert stacks and all(stack.dtype == np.complex64 for stack in stacks)
    assert all(
        np.array_equal(stack[0], np.eye(stack.shape[1], dtype=np.complex64))
        for stack in stacks
    )
    # Matrices and plans are dtype-independent (cast happens at apply time).
    assert_noisy_programs_identical(c64, c128)


def test_readout_only_noise_compiles_without_events():
    circuit = qaoa_like_circuit(3, 0.2, 0.5)
    readout = NoiseModel(readout_error=0.1)
    program = compile_trajectory_program_cached(circuit, readout)
    assert not any(
        step.noise for step in program.steps if isinstance(step, GateStep)
    )


def test_compile_cache_lru_eviction_is_bounded_and_oldest_first():
    set_compile_cache_size(3)
    circuits = [qaoa_like_circuit(n, 0.3, 0.6) for n in (2, 3, 4, 5)]
    for circuit in circuits:
        compile_trajectory_program_cached(circuit, NOISE)
    info = compile_cache_info()
    assert info["template"]["entries"] == 3
    assert info["program"]["entries"] == 3
    assert info["template"]["maxsize"] == 3
    # The oldest structure (2 qubits) was evicted: recompiling misses again.
    before = compile_cache_info()["template"]["misses"]
    compile_trajectory_program_cached(circuits[0], NOISE)
    assert compile_cache_info()["template"]["misses"] == before + 1
    # The newest survivors still hit.
    before_hits = compile_cache_info()["program"]["hits"]
    compile_trajectory_program_cached(circuits[-1], NOISE)
    assert compile_cache_info()["program"]["hits"] == before_hits + 1


def test_shrinking_the_cache_evicts_immediately():
    for n in (2, 3, 4, 5):
        compile_trajectory_program_cached(qaoa_like_circuit(n, 0.1, 0.2), NOISE)
    set_compile_cache_size(2)
    info = compile_cache_info()
    assert info["template"]["entries"] == 2 and info["program"]["entries"] == 2


def test_compile_cache_size_knob_on_simulator():
    StatevectorSimulator(compile_cache_size=7)
    assert compile_cache_info()["template"]["maxsize"] == 7
    assert transpile_cache_info()["maxsize"] == 7
    with pytest.raises(SimulationError):
        StatevectorSimulator(compile_cache_size=0)
    with pytest.raises(SimulationError):
        StatevectorSimulator(compile_cache_size="many")


def test_gate_registration_invalidates_compile_caches():
    from repro.simulators.gate.gates import _GATES, register_gate

    compile_trajectory_program_cached(qaoa_like_circuit(3, 0.1, 0.2), NOISE)
    assert compile_cache_info()["program"]["entries"] == 1
    name = "probe_gate_for_cache_invalidation"
    try:
        register_gate(name, 1, 0, lambda: np.eye(2, dtype=complex), replace=True)
        # Compiled programs may embed matrices of any definition; a changed
        # registry flushes them all.
        assert compile_cache_info()["program"]["entries"] == 0
        assert compile_cache_info()["template"]["entries"] == 0
    finally:
        _GATES.pop(name, None)


# -- GEMM noise path ----------------------------------------------------------------


def test_apply_operator_columns_matches_per_column_reference():
    rng = np.random.default_rng(11)
    for qubits, num_qubits in (((1,), 3), ((0, 2), 3), ((2, 1), 3)):
        dim = 1 << len(qubits)
        batch = 17
        state = rng.normal(size=(2,) * num_qubits + (batch,)) + 1j * rng.normal(
            size=(2,) * num_qubits + (batch,)
        )
        ops = rng.normal(size=(batch, dim, dim)) + 1j * rng.normal(
            size=(batch, dim, dim)
        )
        fast = state.copy()
        apply_operator_columns(fast, ops, qubits)
        slow = state.copy()
        for column in range(batch):
            tensor = slow[..., column].copy()
            from repro.simulators.gate.kernels import apply_plan_inplace

            apply_plan_inplace(tensor, build_plan(ops[column]), list(qubits))
            slow[..., column] = tensor
        assert np.allclose(fast, slow, atol=1e-12)


def test_apply_operator_columns_rejects_bad_shapes():
    state = np.zeros((2, 2, 5), dtype=np.complex128)
    with pytest.raises(ValueError):
        apply_operator_columns(state, np.zeros((5, 4, 4)), [0])


def test_gemm_and_slice_paths_bit_identical_on_batched_state():
    program = compile_trajectory_program(
        qaoa_like_circuit(4, 0.7, 0.3, measure=False),
        NoiseModel(oneq_error=0.3, twoq_error=0.4),
    )
    events = [step.noise for step in program.steps if step.noise]
    assert events
    for dtype in (np.complex64, np.complex128):
        slice_state = BatchedStatevector(4, 64, dtype=dtype)
        gemm_state = BatchedStatevector(4, 64, dtype=dtype)
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        for step_events in events:
            slice_state.apply_noise_events(step_events, rng_a, gemm_threshold=None)
            gemm_state.apply_noise_events(step_events, rng_b, gemm_threshold=0.0)
        a = slice_state.data
        b = gemm_state.data
        assert np.array_equal(np.abs(a) ** 2, np.abs(b) ** 2)


@pytest.mark.parametrize("workers", [1, 3])
def test_noise_gemm_threshold_never_changes_seeded_counts(workers):
    rng = np.random.default_rng(31)
    circuit = random_mixed_circuit(rng, 4, 14)
    noise = NoiseModel(oneq_error=0.12, twoq_error=0.18, readout_error=0.04)
    reference = None
    for threshold in (None, 0.0, 64.0, 1e9):
        simulator = StatevectorSimulator(
            noise_model=noise,
            noise_gemm_threshold=threshold,
            max_batch_memory=4096,
            trajectory_workers=workers,
        )
        counts = simulator.run(circuit, shots=768, seed=13).counts
        if reference is None:
            reference = dict(counts)
        assert dict(counts) == reference, (threshold, workers)


def test_noise_gemm_threshold_validation():
    with pytest.raises(SimulationError):
        StatevectorSimulator(noise_gemm_threshold=-1.0)
    with pytest.raises(SimulationError):
        StatevectorSimulator(noise_gemm_threshold="always")
    assert StatevectorSimulator(noise_gemm_threshold=None).noise_gemm_threshold is None
    assert StatevectorSimulator(noise_gemm_threshold=8).noise_gemm_threshold == 8.0


# -- the reference engine on compiled programs --------------------------------------


def test_reference_engine_reports_compiled_steps_and_stays_deterministic():
    rng = np.random.default_rng(3)
    circuit = random_mixed_circuit(rng, 3, 10)
    simulator = StatevectorSimulator(noise_model=NOISE, trajectory_engine="reference")
    first = simulator.run(circuit, shots=128, seed=7)
    second = simulator.run(circuit, shots=128, seed=7)
    assert dict(first.counts) == dict(second.counts)
    assert first.metadata["compiled_steps"] >= 1
    # The warm rerun was served by the program cache.
    assert compile_cache_info()["program"]["hits"] >= 1


# -- transpile cache ----------------------------------------------------------------

RING = tuple((i, (i + 1) % 6) for i in range(6))
BASIS = ("rz", "sx", "cx")


def assert_circuits_identical(a, b):
    """Instruction-by-instruction equality (names, qubits, params, clbits)."""
    assert a.num_qubits == b.num_qubits and a.num_clbits == b.num_clbits
    assert a.instructions == b.instructions


@pytest.mark.parametrize("optimization_level", [0, 1, 2])
def test_transpile_cached_equals_uncached(optimization_level):
    for seed in range(3):
        rng = np.random.default_rng(40 + seed)
        circuit = random_unitary_circuit(rng, 6, 20)
        circuit.measure_all()
        cached = transpile_cached(
            circuit,
            basis_gates=BASIS,
            coupling_map=RING,
            optimization_level=optimization_level,
        )
        fresh = transpile(
            circuit,
            basis_gates=BASIS,
            coupling_map=RING,
            optimization_level=optimization_level,
        )
        assert_circuits_identical(cached.circuit, fresh.circuit)
        assert cached.metrics == fresh.metrics
        assert cached.initial_layout.to_dict() == fresh.initial_layout.to_dict()
        assert cached.final_layout.to_dict() == fresh.final_layout.to_dict()
        assert cached.num_swaps_inserted == fresh.num_swaps_inserted


def test_transpile_cache_rebinds_fresh_parameters_on_structure_hits():
    clear_transpile_cache()
    transpile_cached(
        qaoa_like_circuit(6, 0.3, 0.5),
        basis_gates=BASIS,
        coupling_map=RING,
        optimization_level=2,
    )
    for k in range(4):
        circuit = qaoa_like_circuit(6, 0.11 * k + 0.05, 0.07 * k + 0.02)
        cached = transpile_cached(
            circuit, basis_gates=BASIS, coupling_map=RING, optimization_level=2
        )
        fresh = transpile(
            circuit, basis_gates=BASIS, coupling_map=RING, optimization_level=2
        )
        assert_circuits_identical(cached.circuit, fresh.circuit)
    info = transpile_cache_info()
    assert info["misses"] == 1 and info["hits"] == 4 and info["fallbacks"] == 0


def test_transpile_cache_distinguishes_pass_config():
    clear_transpile_cache()
    circuit = qaoa_like_circuit(6, 0.3, 0.5)
    transpile_cached(circuit, basis_gates=BASIS, coupling_map=RING)
    transpile_cached(circuit, basis_gates=BASIS)
    transpile_cached(circuit, basis_gates=BASIS, coupling_map=RING, optimization_level=2)
    assert transpile_cache_info()["entries"] == 3


def test_transpile_cache_eviction():
    clear_transpile_cache()
    set_transpile_cache_size(2)
    try:
        for n in (3, 4, 5):
            transpile_cached(qaoa_like_circuit(n, 0.1, 0.2), basis_gates=BASIS)
        assert transpile_cache_info()["entries"] == 2
    finally:
        set_transpile_cache_size(DEFAULT_COMPILE_CACHE_SIZE)


def test_transpiled_noisy_counts_identical_cold_vs_warm_end_to_end():
    # The full backend-shaped pipeline: transpile (cached) then simulate with
    # a noisy compiled program (cached) — warm reruns must not move a count.
    circuit = qaoa_like_circuit(5, 0.8, 0.4)
    simulator = StatevectorSimulator(noise_model=NOISE)

    def run_once():
        transpiled = transpile_cached(
            circuit, basis_gates=BASIS, coupling_map=RING, optimization_level=1
        )
        return simulator.run(transpiled.circuit, shots=512, seed=23).counts

    cold = run_once()
    warm = run_once()
    assert dict(cold) == dict(warm)
    info = compile_cache_info()
    assert info["program"]["hits"] >= 1
    assert info["transpile"]["hits"] >= 1
