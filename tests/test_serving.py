"""Tests for the async serving queue (:mod:`repro.services.serving`).

The headline contract is coalescing: N structurally identical submissions
form one execution group, pay one fusion/template compile, and still stream
N independent results.  The rest covers admission control (no context, no
capable engine, duplicate live names), the service-wide exec-option merge,
mixed batches, and QEC bundles riding the same queue.
"""

import threading

import pytest

from repro.core import ContextDescriptor, ExecPolicy, ServiceError, package, phase_register
from repro.oplib import measurement, qft_operator, repetition_memory_operator, repetition_register
from repro.services import CostAwareScheduler, JobService
from repro.simulators.gate.fusion import clear_compile_caches, compile_cache_info
from repro.workflows import build_qaoa_bundle
from repro.problems import MaxCutProblem


def qft_bundle(name, *, width=4, seed=1, samples=256):
    reg = phase_register("p", width)
    return package(
        reg,
        [qft_operator(reg, do_swaps=True), measurement(reg)],
        ContextDescriptor(
            exec=ExecPolicy(engine="gate.aer_simulator", samples=samples, seed=seed)
        ),
        name=name,
    )


def qec_bundle(name, *, distance=5, rounds=3, seed=7):
    reg = repetition_register("patch", distance)
    return package(
        reg,
        [repetition_memory_operator(reg, distance, rounds=rounds)],
        ContextDescriptor(
            exec=ExecPolicy(
                engine="gate.aer_simulator",
                samples=200,
                seed=seed,
                options={
                    "trajectory_engine": "auto",
                    "noise": {"oneq_error": 1e-3, "twoq_error": 2e-3},
                },
            )
        ),
        name=name,
    )


def test_submit_many_coalesces_identical_structures():
    # N structurally identical circuits -> 1 group, 1 template compile,
    # N independent result streams.
    clear_compile_caches()
    bundles = [qft_bundle(f"user{i}", seed=i + 1) for i in range(5)]
    with JobService(lanes=1) as service:
        tickets = service.submit_many(bundles)
        results = {ticket.name: ticket.result(timeout=60) for ticket in tickets}
        stats = service.stats()
    assert stats == {
        "submitted": 5,
        "completed": 5,
        "failed": 0,
        "groups": 1,
        "coalesced": 4,
        "merged_groups": 1,
        "merged_jobs": 5,
        "retries": 0,
        "crashes_recovered": 0,
        "deadline_kills": 0,
        "cancelled": 0,
        "rejected": 0,
        "pool_breakages": 0,
        "executor_fallback": 0,
    }
    assert compile_cache_info()["template"]["misses"] == 1
    assert len(results) == 5
    positions = set()
    for ticket in tickets:
        serving = results[ticket.name].metadata["serving"]
        assert serving["group_size"] == 5
        assert serving["job_id"] == ticket.job_id
        assert serving["merged"] is True
        positions.add(serving["group_position"])
    assert positions == set(range(5))
    # Different seeds really did run independently.
    assert results["user1"].counts.shots == 256


def test_coalescing_disabled_gives_singleton_groups():
    bundles = [qft_bundle(f"solo{i}", seed=i + 1) for i in range(3)]
    with JobService(lanes=1, coalesce=False) as service:
        service.submit_many(bundles)
        service.drain()
        stats = service.stats()
    assert stats["groups"] == 3
    assert stats["coalesced"] == 0
    assert stats["completed"] == 3


def test_as_completed_streams_every_submission():
    with JobService(lanes=2) as service:
        service.submit_many([qft_bundle(f"s{i}", seed=i + 1) for i in range(4)])
        seen = [ticket.name for ticket in service.as_completed(timeout=60)]
    assert sorted(seen) == ["s0", "s1", "s2", "s3"]


def test_duplicate_live_name_rejected_then_reusable(monkeypatch):
    from repro.services import serving as serving_module

    real_submit = serving_module.runtime_submit
    started = threading.Event()
    release = threading.Event()

    def gated_submit(bundle, **kwargs):
        started.set()
        assert release.wait(timeout=60)
        return real_submit(bundle, **kwargs)

    monkeypatch.setattr(serving_module, "runtime_submit", gated_submit)
    with JobService(lanes=1) as service:
        first = service.submit(qft_bundle("dup"))
        assert started.wait(timeout=60)  # job is live on the lane
        with pytest.raises(ServiceError, match="already queued or running"):
            service.submit(qft_bundle("dup"))
        release.set()
        assert first.result(timeout=60).counts.shots == 256
        # After completion the name is free again.
        second = service.submit(qft_bundle("dup", seed=2))
        assert second.result(timeout=60) is not None
        assert service.ticket("dup") is second


def test_admission_requires_context():
    bundle = qft_bundle("bare").with_context(None)
    with JobService() as service:
        with pytest.raises(ServiceError, match="no execution context"):
            service.submit(bundle)
        assert service.stats()["submitted"] == 0


def test_admission_requires_capable_engine():
    # A gate-only scheduler cannot place an annealing bundle.
    from repro.workflows import build_anneal_bundle

    scheduler = CostAwareScheduler(engines=("gate.aer_simulator",))
    bundle = build_anneal_bundle(MaxCutProblem.cycle(4))
    with JobService(scheduler=scheduler) as service:
        with pytest.raises(ServiceError):
            service.submit(bundle)
        assert service.stats()["submitted"] == 0


def test_submit_after_close_rejected():
    service = JobService()
    service.close()
    with pytest.raises(ServiceError, match="closed"):
        service.submit(qft_bundle("late"))


def test_exec_options_merge_reaches_backend():
    bundle = build_qaoa_bundle(MaxCutProblem.cycle(4))
    overrides = {"noise": {"oneq_error": 1e-3}, "max_batch_memory": 4096}
    with JobService(exec_options=overrides) as service:
        result = service.submit(bundle).result(timeout=60)
    assert result.metadata["num_batches"] > 1
    assert result.metadata["trajectory_executor"] == "thread"
    # The caller's bundle is untouched: the merge happens on a copy.
    assert "noise" not in bundle.context.exec.options


def test_mixed_batch_places_per_bundle_and_qec_uses_stabilizer():
    bundles = [
        qft_bundle("fourier"),
        qec_bundle("memory"),
        build_qaoa_bundle(MaxCutProblem.cycle(4), name="maxcut"),
    ]
    with JobService(lanes=2) as service:
        tickets = {t.name: t for t in service.submit_many(bundles)}
        service.drain()
        stats = service.stats()
    assert stats["completed"] == 3
    assert stats["failed"] == 0
    qec_result = tickets["memory"].result()
    assert qec_result.metadata["trajectory_engine"] == "stabilizer"
    assert qec_result.counts.shots == 200
    assert tickets["fourier"].engine.startswith("gate.")


def test_failure_routes_to_ticket_not_service(monkeypatch):
    from repro.services import serving as serving_module

    def exploding_submit(bundle, **kwargs):
        raise RuntimeError("backend fell over")

    monkeypatch.setattr(serving_module, "runtime_submit", exploding_submit)
    with JobService() as service:
        ticket = service.submit(qft_bundle("doomed"))
        exc = ticket.exception(timeout=60)
        assert isinstance(exc, RuntimeError)
        with pytest.raises(RuntimeError, match="fell over"):
            ticket.result()
        stats = service.stats()
    assert stats["failed"] == 1
    assert stats["completed"] == 0
