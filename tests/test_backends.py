"""Tests for backends: lowering, gate/anneal/exact execution, registry, runtime."""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core import (
    CapabilityError,
    ContextDescriptor,
    ContextError,
    ExecPolicy,
    LoweringError,
    QuantumOperatorDescriptor,
    integer_register,
    ising_register,
    package,
    phase_register,
)
from repro.backends import (
    AnnealBackend,
    ExactBackend,
    GateBackend,
    bqm_from_operator,
    get_backend,
    list_engines,
    submit,
)
from repro.oplib import (
    adder_operator,
    ising_problem_operator,
    measurement,
    prep_amplitude,
    prep_basis_state,
    prep_uniform,
    qaoa_sequence,
    qft_operator,
    inverse_qft_operator,
)
from repro.simulators.gate import Statevector, circuit_unitary
from repro.workflows import build_anneal_bundle, build_qaoa_bundle


# -- registry / runtime -----------------------------------------------------------

def test_engine_registry():
    assert "gate.aer_simulator" in list_engines()
    assert "anneal.simulated_annealer" in list_engines()
    assert "exact.brute_force" in list_engines()
    assert isinstance(get_backend("gate.aer_simulator"), GateBackend)
    assert isinstance(get_backend("anneal.neal"), AnnealBackend)
    with pytest.raises(Exception):
        get_backend("photonic.nonexistent")


def test_submit_requires_context(cycle4):
    from repro.core import JobBundle

    bundle = build_qaoa_bundle(cycle4)
    no_ctx = JobBundle(qdts=dict(bundle.qdts), operators=bundle.operators, context=None)
    with pytest.raises(ContextError):
        submit(no_ctx)


def test_submit_records_timing(cycle4, gate_context):
    result = submit(build_qaoa_bundle(cycle4, context=gate_context))
    assert result.metadata["wall_time_s"] > 0
    assert result.metadata["engine_requested"] == "gate.aer_simulator"
    assert result.bundle_digest


def test_capability_mismatch_raises(cycle4, anneal_context):
    # A QAOA (gate) bundle pointed at the annealer must fail validation or
    # capability negotiation, never run.
    from repro.core import CompatibilityError

    bundle = build_qaoa_bundle(cycle4)
    retargeted = bundle.with_context(anneal_context)
    with pytest.raises((CapabilityError, ContextError, CompatibilityError)):
        submit(retargeted)


# -- gate backend lowering correctness ----------------------------------------------

def run_gate(qdt_or_list, ops, samples=2048, seed=5, **ctx_kwargs):
    context = ContextDescriptor(
        exec=ExecPolicy(engine="gate.aer_simulator", samples=samples, seed=seed, **ctx_kwargs)
    )
    bundle = package(qdt_or_list, ops, context, name="test")
    return submit(bundle)


def test_prep_uniform_measurement(ising_vars):
    result = run_gate(ising_vars, [prep_uniform(ising_vars), measurement(ising_vars)],
                      samples=4096)
    counts = result.counts
    assert len(counts) == 16
    assert max(counts.probabilities().values()) < 0.12


def test_prep_basis_state_round_trip():
    reg = integer_register("n", 5)
    result = run_gate(reg, [prep_basis_state(reg, 19), measurement(reg)], samples=256)
    assert result.most_likely() == 19
    assert result.decoded().single().most_likely().probability == 1.0


def test_qft_roundtrip_recovers_phase(reg_phase10):
    ops = [
        prep_basis_state(reg_phase10, Fraction(3, 8)),
        qft_operator(reg_phase10),
        inverse_qft_operator(reg_phase10),
        measurement(reg_phase10),
    ]
    result = run_gate(reg_phase10, ops, samples=512)
    assert result.most_likely() == Fraction(3, 8)


def test_qft_on_basis_state_gives_uniform_magnitudes():
    reg = phase_register("p", 3)
    backend = GateBackend()
    bundle = package(reg, [qft_operator(reg, do_swaps=True), measurement(reg)],
                     ContextDescriptor(exec=ExecPolicy(engine="gate.aer_simulator", samples=4096, seed=1)),
                     name="qft")
    result = backend.run(bundle)
    # QFT|0> is the uniform superposition: every outcome equally likely.
    probs = result.counts.probabilities()
    assert len(probs) == 8
    assert max(probs.values()) - min(probs.values()) < 0.08


def test_qft_unitary_matches_dft_matrix():
    """The lowered QFT implements the DFT in the register's basis ordering."""
    reg = phase_register("p", 3)
    backend = GateBackend()
    bundle = package(reg, [qft_operator(reg, do_swaps=True)],
                     ContextDescriptor(exec=ExecPolicy(engine="gate.aer_simulator", samples=1)),
                     name="qft", validate=False)
    circuit, allocation = backend.build_circuit(bundle)
    unitary = circuit_unitary(circuit)
    n = 8
    omega = np.exp(2j * np.pi / n)
    # Map register basis index k to the simulator's flat index via the bitstring.
    def flat(k):
        bits = reg.index_to_bits(k)  # carrier-order bits, carrier i = qubit i
        return int(bits, 2)
    dft = np.zeros((n, n), dtype=complex)
    for k in range(n):
        for l in range(n):
            dft[flat(l), flat(k)] = omega ** (k * l) / np.sqrt(n)
    assert np.allclose(unitary, dft, atol=1e-9)


def test_draper_adder_constant():
    reg = integer_register("n", 4)
    ops = [prep_basis_state(reg, 6), adder_operator(reg, 5), measurement(reg)]
    result = run_gate(reg, ops, samples=128)
    assert result.most_likely() == 11
    # wrap-around modulo 2^4
    ops = [prep_basis_state(reg, 12), adder_operator(reg, 7), measurement(reg)]
    assert run_gate(reg, ops, samples=128).most_likely() == 3


def test_register_adder():
    from repro.oplib import register_adder_operator

    src = integer_register("src", 3)
    dst = integer_register("dst", 3)
    ops = [
        prep_basis_state(src, 3),
        prep_basis_state(dst, 2),
        register_adder_operator(dst, src),
        measurement(dst),
    ]
    result = run_gate([src, dst], ops, samples=128)
    assert result.most_likely() == 5


def test_prep_amplitude_lowering_small():
    reg = integer_register("n", 2)
    amplitudes = [math.sqrt(0.1), math.sqrt(0.2), math.sqrt(0.3), math.sqrt(0.4)]
    result = run_gate(reg, [prep_amplitude(reg, amplitudes), measurement(reg)], samples=8192)
    probs = {o.value: o.probability for o in result.decoded().single().outcomes}
    assert abs(probs[3] - 0.4) < 0.05
    assert abs(probs[0] - 0.1) < 0.05


def test_prep_amplitude_width_limit():
    reg = integer_register("n", 4)
    op = prep_amplitude(reg, [1.0] + [0.0] * 15)
    with pytest.raises(Exception):
        run_gate(reg, [op, measurement(reg)], samples=16)


def test_swap_test_equal_states():
    a, b = integer_register("a", 2), integer_register("b", 2)
    anc = ising_register("anc", 1)
    from repro.oplib import swap_test_operator

    ops = [prep_basis_state(a, 2), prep_basis_state(b, 2), swap_test_operator(a, b, anc)]
    result = run_gate([anc, a, b], ops, samples=2048)
    # identical states -> ancilla always 0
    assert result.counts.probability("0") > 0.98


def test_swap_test_orthogonal_states():
    a, b = integer_register("a", 2), integer_register("b", 2)
    anc = ising_register("anc", 1)
    from repro.oplib import swap_test_operator

    ops = [prep_basis_state(a, 1), prep_basis_state(b, 2), swap_test_operator(a, b, anc)]
    result = run_gate([anc, a, b], ops, samples=4096)
    assert abs(result.counts.probability("0") - 0.5) < 0.05


def test_qpe_estimates_phase():
    from repro.oplib import controlled_phase_operator, qpe_operator

    phase_reg = phase_register("ph", 4)
    target = integer_register("t", 1)
    # Eigenphase 2*pi*(5/16) -> QPE should read 5/16 of a turn.
    unitary = controlled_phase_operator(phase_reg, target, 2 * math.pi * 5 / 16)
    ops = [qpe_operator(phase_reg, target, unitary)]
    context = ContextDescriptor(exec=ExecPolicy(engine="gate.aer_simulator", samples=1024, seed=3))
    bundle = package([phase_reg, target], ops, context, name="qpe", validate=False)
    backend = GateBackend()
    # QPE itself does not measure; add an explicit measurement of the phase register.
    bundle = package([phase_reg, target], ops + [measurement(phase_reg)], context, name="qpe",
                     validate=False)
    result = backend.run(bundle)
    assert result.decoded().single().most_likely().value == Fraction(5, 16)


def test_unbound_qaoa_angle_fails_at_lowering(ising_vars, cycle4, gate_context):
    seq = qaoa_sequence(ising_vars, cycle4.edges, reps=1)  # unbound
    bundle = package(ising_vars, seq, gate_context, name="unbound", validate=False)
    with pytest.raises(Exception):
        GateBackend().run(bundle)


def test_unsupported_rep_kind_rejected(gate_context):
    reg = integer_register("n", 3)
    op = QuantumOperatorDescriptor(
        name="modmul", rep_kind="MODULAR_MULT_TEMPLATE", domain_qdt=reg.id,
        params={"multiplier": 3, "modulus": 5},
    )
    bundle = package(reg, [op, measurement(reg)], gate_context, name="x", validate=False)
    with pytest.raises(CapabilityError):
        GateBackend().check_capabilities(bundle)


def test_measurement_in_x_basis(ising_vars):
    from repro.core import ResultSchema

    schema = ResultSchema.for_register(ising_vars, basis="X")
    ops = [prep_uniform(ising_vars), measurement(ising_vars, result_schema=schema)]
    result = run_gate(ising_vars, ops, samples=512)
    # |+>^n measured in X basis is deterministic all-zero.
    assert result.counts.probability("0000") == 1.0


def test_transpile_metadata_reported(cycle4, ring_gate_context):
    result = submit(build_qaoa_bundle(cycle4, context=ring_gate_context))
    assert result.metadata["transpiled_twoq"] >= 4
    assert result.metadata["transpile_metrics"]["swaps_inserted"] >= 0
    assert result.metadata["simulation_method"] == "exact"


# -- anneal / exact backends -------------------------------------------------------------

def test_bqm_from_operator_ising(ising_vars, cycle4):
    op = ising_problem_operator(ising_vars, edges=cycle4.edges, weights=cycle4.weights)
    bqm = bqm_from_operator(op)
    assert bqm.num_variables == 4 and bqm.num_interactions == 4
    assert bqm.energy([1, -1, 1, -1]) == -4.0
    with pytest.raises(CapabilityError):
        bqm_from_operator(prep_uniform(ising_vars))


def test_anneal_backend_end_to_end(cycle4, anneal_context):
    result = submit(build_anneal_bundle(cycle4, context=anneal_context))
    assert result.metadata["best_energy"] == -4.0
    assert result.metadata["ground_state_probability"] > 0.8
    assert result.sampleset is not None
    decoded = result.decoded().single()
    assert decoded.most_likely().value in ((0, 1, 0, 1), (1, 0, 1, 0))


def test_anneal_backend_rejects_multiple_problems(ising_vars, cycle4, anneal_context):
    op = ising_problem_operator(ising_vars, edges=cycle4.edges)
    bundle = package(ising_vars, [op, op.with_params()], anneal_context, name="two", validate=False)
    with pytest.raises(CapabilityError):
        AnnealBackend().run(bundle)


def test_exact_backend_ground_states(cycle4):
    context = ContextDescriptor(exec=ExecPolicy(engine="exact.brute_force", samples=1))
    bundle = build_anneal_bundle(cycle4).with_context(context)
    result = submit(bundle)
    assert result.metadata["ground_energy"] == -4.0
    assert result.metadata["num_ground_states"] == 2
    assert set(result.counts) == {"0101", "1010"}


# -- trajectory-engine selection (stabilizer / auto) --------------------------------

def test_resolve_trajectory_engine_classification():
    from repro.backends import resolve_trajectory_engine
    from repro.simulators.gate import Circuit

    clifford = Circuit(2, 2)
    clifford.h(0).cx(0, 1).measure_all()
    assert resolve_trajectory_engine(clifford) == "stabilizer"
    non_clifford = Circuit(1, 1)
    non_clifford.t(0)
    assert resolve_trajectory_engine(non_clifford) == "batched"
    # Explicit requests pass through untouched, even when they will fail.
    assert resolve_trajectory_engine(non_clifford, "stabilizer") == "stabilizer"
    assert resolve_trajectory_engine(clifford, "density") == "density"


def test_gate_backend_auto_selects_stabilizer_for_clifford_bundle(ising_vars):
    result = run_gate(
        ising_vars,
        [prep_uniform(ising_vars), measurement(ising_vars)],
        samples=512,
        options={"trajectory_engine": "auto", "noise": {"oneq_error": 0.01}},
    )
    assert result.metadata["trajectory_engine"] == "stabilizer"
    assert sum(result.counts.values()) == 512


def test_gate_backend_auto_falls_back_to_batched_for_non_clifford(reg_phase10):
    # The QFT lowering emits controlled phases (non-Clifford), so auto
    # selection must route to the batched engine instead of crashing.
    result = run_gate(
        reg_phase10,
        [prep_uniform(reg_phase10), qft_operator(reg_phase10), measurement(reg_phase10)],
        samples=128,
        options={"trajectory_engine": "auto", "noise": {"oneq_error": 0.01}},
    )
    assert result.metadata["trajectory_engine"] == "batched"
    assert sum(result.counts.values()) == 128


def test_gate_backend_explicit_stabilizer_on_non_clifford_raises_typed(reg_phase10):
    from repro.core.errors import BackendError, UnsupportedGateError

    with pytest.raises(UnsupportedGateError) as excinfo:
        run_gate(
            reg_phase10,
            [prep_uniform(reg_phase10), qft_operator(reg_phase10), measurement(reg_phase10)],
            samples=64,
            options={"trajectory_engine": "stabilizer"},
        )
    # The typed selection signal surfaces unwrapped, never as BackendError.
    assert not isinstance(excinfo.value, BackendError)
    assert excinfo.value.gate
    assert excinfo.value.index >= 0
