"""Tests for annealer sample sets."""

import numpy as np
import pytest

from repro.core import DecodingError
from repro.results import SampleSet


def make_set():
    samples = np.array([[1, -1, 1, -1], [-1, 1, -1, 1], [1, 1, 1, 1]], dtype=np.int8)
    energies = np.array([-4.0, -4.0, 4.0])
    occurrences = np.array([500, 450, 50])
    return SampleSet(samples, energies, occurrences, variables=["s0", "s1", "s2", "s3"])


def test_basic_properties():
    sset = make_set()
    assert len(sset) == 3
    assert sset.num_reads == 1000
    assert sset.variables == ["s0", "s1", "s2", "s3"]
    assert sset.first.energy == -4.0
    assert sset.ground_state_probability() == 0.95
    assert abs(sset.mean_energy() - (-4.0 * 950 + 4.0 * 50) / 1000) < 1e-12


def test_validation():
    with pytest.raises(DecodingError):
        SampleSet(np.array([[0, 1]]), np.array([0.0]))  # not spins
    with pytest.raises(DecodingError):
        SampleSet(np.array([[1, -1]]), np.array([0.0, 1.0]))  # energy length mismatch
    with pytest.raises(DecodingError):
        SampleSet(np.array([[1, -1]]), np.array([0.0]), variables=["a"])  # name mismatch


def test_lowest_and_truncate():
    sset = make_set()
    lowest = sset.lowest(2)
    assert len(lowest) == 2
    assert all(e == -4.0 for e in lowest.energies)
    assert len(sset.truncate(1)) == 1


def test_aggregate_merges_duplicates():
    samples = np.array([[1, -1], [1, -1], [-1, 1]], dtype=np.int8)
    sset = SampleSet(samples, np.array([-1.0, -1.0, -1.0]))
    merged = sset.aggregate()
    assert len(merged) == 2
    assert merged.num_reads == 3


def test_to_counts_spin_convention():
    sset = make_set()
    counts = sset.to_counts()
    # +1 -> '0', -1 -> '1'; first record (1,-1,1,-1) -> "0101"
    assert counts["0101"] == 500
    assert counts["1010"] == 450
    assert counts["0000"] == 50


def test_from_samples_with_energy_fn():
    def energy(row):
        return float(-sum(row))

    sset = SampleSet.from_samples([[1, 1], [1, 1], [-1, 1]], energy, variables=["a", "b"])
    assert len(sset) == 2
    assert sset.first.energy == -2.0


def test_iteration_yields_records():
    records = list(make_set())
    assert records[0].sample == (1, -1, 1, -1)
    assert records[0].as_dict(["s0", "s1", "s2", "s3"])["s1"] == -1


def test_empty_errors():
    sset = SampleSet(np.zeros((0, 2), dtype=np.int8) + 1, np.zeros(0))
    with pytest.raises(DecodingError):
        _ = sset.first
    with pytest.raises(DecodingError):
        sset.mean_energy()
