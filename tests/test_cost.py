"""Tests for cost hints and their composition algebra."""

from repro.core import CostHint


def test_to_from_dict_round_trip():
    hint = CostHint(twoq=45, depth=100, extras={"note": "listing3"})
    doc = hint.to_dict()
    assert doc == {"twoq": 45, "depth": 100, "extras": {"note": "listing3"}}
    rebuilt = CostHint.from_dict(doc)
    assert rebuilt.twoq == 45 and rebuilt.depth == 100
    assert CostHint.from_dict(None) is None
    assert CostHint.from_dict({}) is None


def test_unknown_keys_preserved_in_extras():
    hint = CostHint.from_dict({"twoq": 3, "t_count": 17})
    assert hint.extras["t_count"] == 17


def test_sequential_composition_adds():
    a = CostHint(twoq=10, depth=5, oneq=2)
    b = CostHint(twoq=3, depth=4)
    combined = a + b
    assert combined.twoq == 13
    assert combined.depth == 9
    assert combined.oneq == 2  # missing treated as zero


def test_parallel_composition_takes_max_depth():
    a = CostHint(twoq=10, depth=5)
    b = CostHint(twoq=3, depth=9)
    combined = a.parallel(b)
    assert combined.twoq == 13
    assert combined.depth == 9


def test_missing_fields_stay_missing():
    combined = CostHint() + CostHint()
    assert combined.is_empty()
    assert combined.twoq is None


def test_scaled():
    hint = CostHint(twoq=4, depth=2).scaled(3)
    assert hint.twoq == 12 and hint.depth == 6


def test_total_ignores_none():
    total = CostHint.total([CostHint(twoq=1), None, CostHint(twoq=2, depth=7)])
    assert total.twoq == 3 and total.depth == 7


def test_get_with_default():
    hint = CostHint(twoq=4)
    assert hint.get("twoq") == 4.0
    assert hint.get("depth") == 0.0
    assert hint.get("depth", 1.5) == 1.5
