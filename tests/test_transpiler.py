"""Tests for the transpiler: decomposition, layout, routing, optimisation, passes."""

import math

import numpy as np
import pytest
from scipy.stats import unitary_group

from repro.core import TranspilerError
from repro.simulators.gate import Circuit, circuit_unitary, equal_up_to_global_phase, transpile
from repro.simulators.gate.transpiler import (
    Layout,
    cancel_inverse_pairs,
    decompose_to_basis,
    greedy_layout,
    merge_rotations,
    optimize_circuit,
    remove_identities,
    route_circuit,
    trivial_layout,
    zyz_angles,
)
from repro.simulators.gate.transpiler.decompose import decompose_1q_matrix
from repro.simulators.gate.gates import gate_matrix


def qft_circuit(n, measured=False):
    circuit = Circuit(n, n if measured else 0)
    for i in range(n):
        circuit.h(i)
        for j in range(i + 1, n):
            circuit.cp(math.pi / 2 ** (j - i), j, i)
    if measured:
        circuit.measure_all()
    return circuit


def test_zyz_angles_reconstruct():
    rng = np.random.default_rng(0)
    for _ in range(20):
        target = unitary_group.rvs(2, random_state=rng)
        theta, phi, lam, phase = zyz_angles(target)
        rebuilt = (
            np.exp(1j * phase)
            * gate_matrix("rz", [phi]) @ gate_matrix("ry", [theta]) @ gate_matrix("rz", [lam])
        )
        assert np.allclose(rebuilt, target, atol=1e-9)


@pytest.mark.parametrize("basis", [["rz", "sx", "cx"], ["rz", "ry", "cx"], ["u", "cx"]])
def test_1q_decomposition_bases(basis):
    rng = np.random.default_rng(1)
    for _ in range(5):
        target = unitary_group.rvs(2, random_state=rng)
        circuit = Circuit(1)
        for inst in decompose_1q_matrix(target, 0, basis):
            circuit.append(inst.name, inst.qubits, inst.params)
        assert equal_up_to_global_phase(circuit_unitary(circuit), target)


@pytest.mark.parametrize(
    "name,qubits,params",
    [
        ("cz", 2, ()), ("cy", 2, ()), ("ch", 2, ()), ("cp", 2, (0.7,)), ("crx", 2, (1.1,)),
        ("cry", 2, (0.3,)), ("crz", 2, (0.9,)), ("swap", 2, ()), ("iswap", 2, ()),
        ("rzz", 2, (0.5,)), ("rxx", 2, (0.8,)), ("ryy", 2, (1.3,)),
        ("ccx", 3, ()), ("ccz", 3, ()), ("cswap", 3, ()),
    ],
)
def test_multi_qubit_expansion_preserves_unitary(name, qubits, params):
    circuit = Circuit(qubits)
    circuit.append(name, list(range(qubits)), params)
    decomposed = decompose_to_basis(circuit, ["cx", "rz", "sx"])
    assert equal_up_to_global_phase(circuit_unitary(circuit), circuit_unitary(decomposed))
    assert all(inst.name in ("cx", "rz", "sx") for inst in decomposed if inst.is_gate)


def test_decompose_to_cz_only_basis():
    circuit = Circuit(2)
    circuit.cx(0, 1)
    decomposed = decompose_to_basis(circuit, ["cz", "rz", "sx"])
    assert equal_up_to_global_phase(circuit_unitary(circuit), circuit_unitary(decomposed))
    assert "cx" not in decomposed.count_ops()


def test_decompose_requires_entangler():
    circuit = Circuit(2)
    circuit.cx(0, 1)
    with pytest.raises(TranspilerError):
        decompose_to_basis(circuit, ["rz", "sx"])


def test_layouts():
    layout = trivial_layout(3)
    assert layout.physical(2) == 2 and layout.logical(1) == 1
    coupling = [(0, 1), (1, 2), (2, 3), (3, 4)]
    greedy = greedy_layout(3, coupling)
    physical = set(greedy.physical_qubits())
    assert len(physical) == 3
    with pytest.raises(TranspilerError):
        greedy_layout(9, coupling)
    with pytest.raises(TranspilerError):
        Layout({0: 1, 1: 1})


def test_layout_swap_tracking():
    layout = trivial_layout(2)
    layout.swap_physical(0, 1)
    assert layout.physical(0) == 1 and layout.physical(1) == 0


def test_routing_inserts_swaps_on_a_line():
    circuit = Circuit(3)
    circuit.cx(0, 2)  # not adjacent on a line 0-1-2
    result = route_circuit(circuit, [(0, 1), (1, 2)])
    assert result.num_swaps_inserted == 1
    ops = result.circuit.count_ops()
    assert ops.get("swap", 0) == 1 and ops.get("cx", 0) == 1


def test_routing_all_to_all_is_identity():
    circuit = Circuit(3)
    circuit.cx(0, 2)
    result = route_circuit(circuit, None)
    assert result.num_swaps_inserted == 0
    assert result.circuit.count_ops() == {"cx": 1}


def test_routing_disconnected_rejected():
    circuit = Circuit(4)
    circuit.cx(0, 3)
    with pytest.raises(TranspilerError):
        route_circuit(circuit, [(0, 1), (2, 3)])


def test_routing_preserves_semantics_of_measured_ghz():
    from repro.simulators.gate import StatevectorSimulator

    circuit = Circuit(3, 3)
    circuit.h(0).cx(0, 2).cx(0, 1).measure_all()
    result = transpile(circuit, coupling_map=[(0, 1), (1, 2)], basis_gates=["sx", "rz", "cx"])
    counts = StatevectorSimulator().run(result.circuit, shots=2000, seed=0).counts
    assert set(counts) == {"000", "111"}


def test_remove_identities_and_merge_rotations():
    circuit = Circuit(1)
    circuit.id(0).rz(0.3, 0).rz(0.4, 0).rz(-0.7, 0)
    optimized = merge_rotations(remove_identities(circuit))
    assert len(optimized.instructions) == 0  # angles cancel to a multiple of 2pi


def test_cancel_inverse_pairs():
    circuit = Circuit(2)
    circuit.h(0).h(0).cx(0, 1).cx(0, 1).x(1)
    cancelled = cancel_inverse_pairs(circuit)
    assert cancelled.count_ops() == {"x": 1}


def test_cancel_does_not_cross_blocking_ops():
    circuit = Circuit(2)
    circuit.cx(0, 1).h(1).cx(0, 1)
    cancelled = cancel_inverse_pairs(circuit)
    assert cancelled.count_ops().get("cx", 0) == 2


def test_optimize_preserves_unitary():
    circuit = qft_circuit(3)
    circuit.h(0).h(0)
    optimized = optimize_circuit(circuit)
    assert equal_up_to_global_phase(circuit_unitary(circuit), circuit_unitary(optimized))
    assert len(optimized.instructions) < len(circuit.instructions)


def test_transpile_constrained_vs_unconstrained_costs():
    circuit = qft_circuit(4, measured=True)
    unconstrained = transpile(circuit, basis_gates=["sx", "rz", "cx"], optimization_level=2)
    constrained = transpile(
        circuit,
        basis_gates=["sx", "rz", "cx"],
        coupling_map=[(0, 1), (1, 2), (2, 3)],
        optimization_level=2,
    )
    # Restricting connectivity must cost extra two-qubit gates (Listing 4 effect).
    assert constrained.metrics["twoq"] > unconstrained.metrics["twoq"]
    assert constrained.num_swaps_inserted > 0
    for inst in constrained.circuit:
        if inst.is_gate and inst.name != "barrier":
            assert inst.name in ("sx", "rz", "cx")


def test_transpile_preserves_unitary_without_coupling():
    circuit = qft_circuit(3)
    result = transpile(circuit, basis_gates=["sx", "rz", "cx"], optimization_level=2)
    assert equal_up_to_global_phase(circuit_unitary(circuit), circuit_unitary(result.circuit))


def test_transpile_rejects_bad_level():
    with pytest.raises(TranspilerError):
        transpile(Circuit(1), optimization_level=9)
