"""Regression tests pinning dtype propagation through the trajectory stack.

The ``trajectory_dtype=complex128`` audit (PR 3) verified that the batched
engine never silently downcasts: the state tensor, the scratch buffer and
every intermediate keep the constructor dtype through gates, kernels, fused
programs, noise events, measurement, reset and terminal sampling.  These tests
pin that behaviour (both directions — no downcast at ``complex128``, no
accidental upcast at ``complex64``) so a future kernel change cannot
reintroduce a cast without tripping the suite.
"""

import numpy as np
import pytest

from repro.simulators.gate import (
    BatchedStatevector,
    Circuit,
    NoiseModel,
    StatevectorSimulator,
)
from repro.simulators.gate.fusion import GateStep, compile_trajectory_program
from repro.simulators.gate.gates import ALL_GATE_NAMES, gate_matrix, get_gate


def noisy_workload(num_qubits=3):
    circuit = Circuit(num_qubits, num_qubits)
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    circuit.rx(0.4, 1)
    circuit.measure(1, 1)  # mid-circuit: forces MeasureStep
    circuit.reset(1)
    circuit.h(1)
    circuit.measure_all()
    return circuit


@pytest.mark.parametrize("dtype", [np.complex64, np.complex128])
def test_batched_tensor_dtype_survives_every_operation(dtype):
    rng = np.random.default_rng(0)
    state = BatchedStatevector(3, 16, dtype=dtype)
    expected = np.dtype(dtype)
    state.apply_gate("h", [0])  # dense 1q GEMM path
    assert state._tensor.dtype == expected and state._scratch.dtype == expected
    state.apply_gate("cx", [0, 1])  # sparse slice-kernel path
    assert state._tensor.dtype == expected
    state.apply_gate("rzz", [1, 2], [0.3])  # diagonal path
    assert state._tensor.dtype == expected
    state.apply_gate("u", [1], [0.1, 0.2, 0.3])
    state.apply_matrix(gate_matrix("crx", (0.5,)), [2, 1])  # adjacent dense 2q GEMM
    assert state._tensor.dtype == expected and state._scratch.dtype == expected
    state.measure(0, rng)
    assert state._tensor.dtype == expected
    state.reset(1, rng)
    assert state._tensor.dtype == expected
    state.sample_all(rng)
    assert state._tensor.dtype == expected


@pytest.mark.parametrize("dtype", [np.complex64, np.complex128])
def test_compiled_program_execution_keeps_engine_dtype(dtype):
    rng = np.random.default_rng(1)
    noise = NoiseModel(oneq_error=0.3, twoq_error=0.3)
    circuit = Circuit(3, 3)
    circuit.h(0).rz(0.2, 0).cx(0, 1).sx(2).cx(1, 2)
    program = compile_trajectory_program(circuit, noise)
    state = BatchedStatevector(3, 32, dtype=dtype)
    for step in program.steps:
        state.apply_matrix(step.matrix, step.qubits, plan=step.plan)
        if step.noise:
            state.apply_noise_events(step.noise, rng)
        assert state._tensor.dtype == np.dtype(dtype)


def test_compiled_matrices_accumulate_in_complex128():
    # Fused products and pushed noise operators must stay complex128 no matter
    # the engine dtype — precision is decided at application time, not
    # compilation time.
    noise = NoiseModel(oneq_error=0.1, twoq_error=0.1)
    circuit = Circuit(2, 2)
    circuit.h(0).rz(0.3, 0).sx(0).cx(0, 1).rz(0.1, 1)
    program = compile_trajectory_program(circuit, noise)
    for step in program.steps:
        assert isinstance(step, GateStep)
        assert step.matrix.dtype == np.complex128
        for event in step.noise:
            for matrix, _ in event.operators:
                assert matrix.dtype == np.complex128


def test_gate_library_serves_complex128_matrices():
    for name in ALL_GATE_NAMES:
        definition = get_gate(name)
        params = tuple(0.3 for _ in range(definition.num_params))
        assert gate_matrix(name, params).dtype == np.complex128, name


@pytest.mark.parametrize("dtype_name", ["complex64", "complex128"])
def test_end_to_end_dtype_metadata_and_statevector(dtype_name):
    simulator = StatevectorSimulator(
        noise_model=NoiseModel(oneq_error=0.02, readout_error=0.01),
        trajectory_dtype=dtype_name,
    )
    result = simulator.run(noisy_workload(), shots=64, seed=3, return_statevector=True)
    assert result.metadata["trajectory_dtype"] == dtype_name
    # The extracted statevector is always complex128 (the result contract),
    # regardless of the engine's internal precision.
    assert result.statevector._tensor.dtype == np.complex128


def test_complex128_batched_matches_reference_collapse_precision():
    # With complex128 the batched engine should track the per-shot reference
    # to float64 rounding (not float32): run a deterministic noiseless circuit
    # with mid-circuit measurement and compare the surviving state.
    circuit = Circuit(2, 2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure(0, 0)
    circuit.h(1)
    circuit.measure(1, 1)
    batched = StatevectorSimulator(trajectory_dtype="complex128")
    reference = StatevectorSimulator(trajectory_engine="reference")
    for seed in (1, 2, 3):
        b = batched.run(circuit, shots=1, seed=seed, return_statevector=True)
        r = reference.run(circuit, shots=1, seed=seed, return_statevector=True)
        if dict(b.counts) == dict(r.counts):
            overlap = abs(np.vdot(b.statevector.data, r.statevector.data))
            assert overlap == pytest.approx(1.0, abs=1e-12)
